//! A small datalog-style parser for join queries, so applications and tests
//! can write queries the way the paper does:
//!
//! ```text
//! Q(a,b,c,d,e) :- R1(a,b,c), R2(a,d), R3(c,d), R4(b,e), R5(c,e)
//! ```
//!
//! Attribute names are single identifiers; they are interned in first-use
//! order (`a` → `Attr(0)`, …). The head is optional (`R1(a,b), R2(b,c)` is
//! accepted) and, when present, must bind exactly the attributes appearing
//! in the body — natural joins have no projection (the paper's future-work
//! section leaves select/project/join to later work).

use crate::query::{Atom, JoinQuery};
use adj_relational::{Attr, Error, Result, Schema};

/// Parses a query string into a [`JoinQuery`]. Returns the query and the
/// interned attribute names (index = attribute id).
pub fn parse_query(input: &str) -> Result<(JoinQuery, Vec<String>)> {
    let (name, body) = match input.split_once(":-") {
        Some((head, body)) => {
            let head = head.trim();
            let name = head.split('(').next().unwrap_or("Q").trim();
            (if name.is_empty() { "Q" } else { name }.to_string(), body)
        }
        None => ("Q".to_string(), input),
    };

    let mut attr_names: Vec<String> = Vec::new();
    let mut intern = |ident: &str| -> u32 {
        if let Some(i) = attr_names.iter().position(|n| n == ident) {
            i as u32
        } else {
            attr_names.push(ident.to_string());
            (attr_names.len() - 1) as u32
        }
    };

    let mut atoms = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let open = rest.find('(').ok_or_else(|| parse_err("expected '(' in atom", rest))?;
        let rel_name = rest[..open].trim_matches([',', ' ', '\n', '\t']).trim();
        if rel_name.is_empty() {
            return Err(parse_err("atom missing relation name", rest));
        }
        let close = rest.find(')').ok_or_else(|| parse_err("unclosed '(' in atom", rest))?;
        if close < open {
            return Err(parse_err("')' before '('", rest));
        }
        let args = &rest[open + 1..close];
        let mut ids = Vec::new();
        for raw in args.split(',') {
            let ident = raw.trim();
            if ident.is_empty() || !ident.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(parse_err("bad attribute identifier", ident));
            }
            ids.push(intern(ident));
        }
        if ids.is_empty() {
            return Err(parse_err("atom with no attributes", rel_name));
        }
        let schema = Schema::new(ids.into_iter().map(Attr).collect())?;
        atoms.push(Atom::new(rel_name, schema));
        rest = rest[close + 1..].trim_start_matches([',', ' ', '\n', '\t']);
    }
    if atoms.is_empty() {
        return Err(parse_err("query has no atoms", input));
    }

    // Validate the head (if it named attributes) covers exactly the body's.
    if let Some((head, _)) = input.split_once(":-") {
        if let (Some(open), Some(close)) = (head.find('('), head.find(')')) {
            let mut head_ids: Vec<u32> = Vec::new();
            for raw in head[open + 1..close].split(',') {
                let ident = raw.trim();
                if ident.is_empty() {
                    continue;
                }
                match attr_names.iter().position(|n| n == ident) {
                    Some(i) => head_ids.push(i as u32),
                    None => {
                        return Err(parse_err("head attribute not bound in body", ident));
                    }
                }
            }
            head_ids.sort_unstable();
            head_ids.dedup();
            if !head_ids.is_empty() && head_ids.len() != attr_names.len() {
                return Err(parse_err("head must bind all body attributes (no projection)", head));
            }
        }
    }

    Ok((JoinQuery::new(name, atoms), attr_names))
}

fn parse_err(msg: &str, what: &str) -> Error {
    Error::UnknownAttr {
        attr: format!("{msg}: '{}'", &what[..what.len().min(40)]),
        schema: "<query string>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_running_example() {
        let (q, names) =
            parse_query("Q(a,b,c,d,e) :- R1(a,b,c), R2(a,d), R3(c,d), R4(b,e), R5(c,e)").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.atoms.len(), 5);
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
        assert_eq!(q.atoms[0].schema.arity(), 3);
        assert_eq!(q.num_attrs(), 5);
        // Equivalent to the hand-built workload query.
        assert_eq!(q.hypergraph(), crate::workload::running_example().hypergraph());
    }

    #[test]
    fn headless_form() {
        let (q, names) = parse_query("R1(x,y), R2(y,z)").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(names, vec!["x", "y", "z"]);
        assert_eq!(q.atoms[1].name, "R2");
    }

    #[test]
    fn attr_interning_is_first_use_order() {
        let (_, names) = parse_query("E(b,a), F(c,a)").unwrap();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("").is_err());
        assert!(parse_query("R1 a,b)").is_err());
        assert!(parse_query("R1(a,b").is_err());
        assert!(parse_query("R1()").is_err());
        assert!(parse_query("R1(a, )").is_err());
        assert!(parse_query("R1(a,a)").is_err()); // duplicate attr in atom
    }

    #[test]
    fn rejects_projection_heads() {
        // head binds fewer attrs than body → projection, unsupported
        assert!(parse_query("Q(a) :- R1(a,b)").is_err());
        // head with unknown attr
        assert!(parse_query("Q(z) :- R1(a,b)").is_err());
        // full head fine
        assert!(parse_query("Q(a,b) :- R1(a,b)").is_ok());
    }

    #[test]
    fn triangle_matches_workload_builder() {
        let (q, _) = parse_query("Q1(a,b,c) :- R1(a,b), R2(b,c), R3(a,c)").unwrap();
        let built = crate::workload::paper_query(crate::workload::PaperQuery::Q1);
        assert_eq!(q.hypergraph(), built.hypergraph());
    }
}
