//! A small datalog-style parser for join queries, so applications and tests
//! can write queries the way the paper does:
//!
//! ```text
//! Q(a,b,c,d,e) :- R1(a,b,c), R2(a,d), R3(c,d), R4(b,e), R5(c,e)
//! ```
//!
//! Attribute names are single identifiers; they are interned in first-use
//! order (`a` → `Attr(0)`, …). The head is optional (`R1(a,b), R2(b,c)` is
//! accepted) and, when present, must bind exactly the attributes appearing
//! in the body — natural joins have no projection (the paper's future-work
//! section leaves select/project/join to later work).
//!
//! Query text may carry an **output-mode prefix** ([`parse_query_with_mode`])
//! selecting what the execution returns instead of the full result:
//!
//! ```text
//! COUNT(Q(a,b,c) :- R1(a,b), R2(b,c), R3(a,c))   -- cardinality only
//! EXISTS(R1(a,b), R2(b,c))                        -- emptiness only
//! LIMIT 10 (R1(a,b), R2(b,c))                     -- at most 10 rows
//! ```
//!
//! Keywords are case-insensitive and the parentheses are optional
//! (`COUNT R1(a,b), R2(b,c)` works). A parenthesized *atom* that merely
//! shares a keyword's spelling (`COUNT(a,b)` as a relation named `COUNT`)
//! is still parsed as an atom: the prefix form requires a nested `(` inside
//! the wrapping parentheses.
//!
//! Atom arguments follow the **three-valued term model** of prepared
//! queries ([`Term`]): besides variables, a position may hold an inline
//! integer literal (`R1(5,b)` — triangles through vertex 5) or a `$name`
//! placeholder (`R1($v,b)` — bound per execution). Literals and
//! placeholders are interned as attributes exactly like variables (by their
//! spelling: every `$v` is one attribute, every `5` is one attribute), so
//! the planner sees an ordinary natural join; the term list records which
//! attributes are pinned. A head, when present, must bind exactly the
//! *variable* attributes (constant columns are implicitly in the result —
//! natural joins still have no projection).
//!
//! Parse failures report the **byte offset** of the offending token in the
//! text handed to the entry point ([`Error::Parse`]), so a serving front
//! door can point at the mistake instead of echoing the whole query.

use crate::query::{Atom, JoinQuery, Term};
use adj_relational::{Attr, Error, OutputMode, Result, Schema, Value};

/// Parses a query string with an optional output-mode prefix
/// (`COUNT(…)`, `EXISTS(…)`, `LIMIT k (…)`; see the module docs). Returns
/// the query, the interned attribute names, and the requested
/// [`OutputMode`] (`Rows` when no prefix is present).
pub fn parse_query_with_mode(input: &str) -> Result<(JoinQuery, Vec<String>, OutputMode)> {
    let (mode, body) = strip_mode_prefix(input, input)?;
    let (query, names) = parse_query_in(input, body)?;
    Ok((query, names, mode))
}

/// What an `EXPLAIN` prefix asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// `EXPLAIN …` — render the chosen plan without executing the query.
    Plan,
    /// `EXPLAIN ANALYZE …` — execute the query and annotate the rendered
    /// plan with measured actuals.
    Analyze,
}

/// Parses a query string carrying an `EXPLAIN` / `EXPLAIN ANALYZE` prefix
/// in front of the usual mode-prefixed query text
/// (`EXPLAIN ANALYZE COUNT(R1(a,b), R2(b,c), R3(a,c))`). Returns `None`
/// when no `EXPLAIN` prefix is present — the text is an ordinary query for
/// [`parse_query_with_mode`]. Keywords follow the same discipline as
/// `COUNT`/`LIMIT`: case-insensitive, optional wrapping parentheses, and a
/// parenthesized *atom* merely named `EXPLAIN`/`ANALYZE` stays an atom.
#[allow(clippy::type_complexity)]
pub fn parse_query_explain(
    input: &str,
) -> Result<Option<(JoinQuery, Vec<String>, OutputMode, ExplainMode)>> {
    let s = input.trim();
    let Some(rest) = keyword_prefix(s, "EXPLAIN") else { return Ok(None) };
    let Some(body) = unwrap_mode_body(rest) else { return Ok(None) };
    let (explain, body) = match keyword_prefix(body, "ANALYZE").and_then(unwrap_mode_body) {
        Some(inner) => (ExplainMode::Analyze, inner),
        None => (ExplainMode::Plan, body),
    };
    let (mode, body) = strip_mode_prefix(input, body)?;
    let (query, names) = parse_query_in(input, body)?;
    Ok(Some((query, names, mode, explain)))
}

/// Recognizes an output-mode prefix and returns the remaining query text.
fn strip_mode_prefix<'a>(full: &str, input: &'a str) -> Result<(OutputMode, &'a str)> {
    let s = input.trim();
    for (kw, mode) in [("COUNT", OutputMode::Count), ("EXISTS", OutputMode::Exists)] {
        if let Some(rest) = keyword_prefix(s, kw) {
            if let Some(body) = unwrap_mode_body(rest) {
                return Ok((mode, body));
            }
        }
    }
    if let Some(rest) = keyword_prefix(s, "LIMIT") {
        // `LIMIT(a,b)` is an atom of a relation named LIMIT (mirroring the
        // COUNT/EXISTS fallback); only `LIMIT <k> …` is the mode prefix.
        if rest.starts_with('(') {
            return Ok((OutputMode::Rows, s));
        }
        let rest = rest.trim_start();
        let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        if digits > 0 {
            // Pinned-down edge semantics: `LIMIT 0 (…)` is a legal query
            // whose answer is the empty relation (the executor
            // short-circuits it without dispatching any worker), and a
            // count too large for `usize` saturates — any limit at or above
            // the result cardinality already means "all rows", so an
            // absurdly large one is a valid way to spell that, not a parse
            // error that 500s a serving thread.
            let n: usize = rest[..digits].parse().unwrap_or(usize::MAX);
            let body = unwrap_mode_body(&rest[digits..])
                .ok_or_else(|| perr(full, rest, "LIMIT needs a query after the count"))?;
            return Ok((OutputMode::Limit(n), body));
        }
        return Err(perr(full, rest, "LIMIT needs a tuple count"));
    }
    Ok((OutputMode::Rows, s))
}

/// `keyword_prefix("COUNT(…)", "COUNT")` → the text after the keyword,
/// provided the keyword is delimited (next char is `(`, whitespace, or
/// end) so relation names like `COUNTRY` never match. Comparison is on
/// raw bytes: a successful ASCII-case-insensitive match proves the
/// boundary at `kw.len()` is a char boundary, so arbitrary (multibyte)
/// query text can never panic here.
fn keyword_prefix<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    if s.len() < kw.len() || !s.as_bytes()[..kw.len()].eq_ignore_ascii_case(kw.as_bytes()) {
        return None;
    }
    let rest = &s[kw.len()..];
    match rest.chars().next() {
        None | Some('(') => Some(rest),
        Some(c) if c.is_whitespace() => Some(rest),
        _ => None,
    }
}

/// Unwraps the `(…)` around a mode prefix's query body, if present. To
/// stay unambiguous with a plain *atom* named like a keyword
/// (`COUNT(a,b)`), the wrapped form counts only when the inside holds a
/// nested `(` — i.e. at least one atom of its own. Returns `None` when no
/// body remains at all.
fn unwrap_mode_body(rest: &str) -> Option<&str> {
    let rest = rest.trim();
    if rest.is_empty() {
        return None;
    }
    if rest.starts_with('(') {
        // Only a paren that wraps the *entire* remainder (balanced to the
        // last char) and holds a nested atom is a mode wrapper; anything
        // else (`(a,b)` attribute lists, unbalanced text) falls back to
        // the plain parser under the keyword-named relation reading.
        let inner = wrapping_parens(rest)?;
        return inner.contains('(').then(|| inner.trim());
    }
    Some(rest)
}

/// If `s`'s leading `(` matches a `)` at its very end, the text between;
/// `None` when the leading paren closes earlier or never.
fn wrapping_parens(s: &str) -> Option<&str> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return (i == s.len() - 1).then(|| &s[1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses a query string into a [`JoinQuery`]. Returns the query and the
/// interned attribute names (index = attribute id; parameters intern as
/// `"$name"`, literals by their spelling). Mode prefixes are *not*
/// recognized here — use [`parse_query_with_mode`] for text that may carry
/// `COUNT`/`LIMIT`/`EXISTS`.
pub fn parse_query(input: &str) -> Result<(JoinQuery, Vec<String>)> {
    parse_query_in(input, input)
}

/// The worker behind both entry points: parses `body`, reporting error
/// offsets relative to `full` (the text the caller originally handed in,
/// of which `body` is a suffix once a mode prefix was stripped).
fn parse_query_in(full: &str, body: &str) -> Result<(JoinQuery, Vec<String>)> {
    let (name, body_text) = match body.split_once(":-") {
        Some((head, b)) => {
            let head = head.trim();
            let name = head.split('(').next().unwrap_or("Q").trim();
            (if name.is_empty() { "Q" } else { name }.to_string(), b)
        }
        None => ("Q".to_string(), body),
    };

    let mut attr_names: Vec<String> = Vec::new();
    let mut intern = |ident: &str| -> u32 {
        if let Some(i) = attr_names.iter().position(|n| n == ident) {
            i as u32
        } else {
            attr_names.push(ident.to_string());
            (attr_names.len() - 1) as u32
        }
    };

    let mut atoms = Vec::new();
    let mut rest = body_text.trim();
    while !rest.is_empty() {
        let open = rest.find('(').ok_or_else(|| perr(full, rest, "expected '(' in atom"))?;
        let rel_name = rest[..open].trim_matches([',', ' ', '\n', '\t']).trim();
        if rel_name.is_empty() {
            return Err(perr(full, rest, "atom missing relation name"));
        }
        let close = rest.find(')').ok_or_else(|| perr(full, rest, "unclosed '(' in atom"))?;
        if close < open {
            return Err(perr(full, &rest[close..], "')' before '('"));
        }
        let args = &rest[open + 1..close];
        let mut ids: Vec<u32> = Vec::new();
        let mut terms: Vec<Term> = Vec::new();
        for raw in args.split(',') {
            let tok = raw.trim();
            if let Some(pname) = tok.strip_prefix('$') {
                // `$name` placeholder: interned as the attribute "$name",
                // so every occurrence of one parameter is one attribute.
                if pname.is_empty() || !is_ident(pname) {
                    return Err(perr(full, tok, "bad parameter name after '$'"));
                }
                ids.push(intern(tok));
                terms.push(Term::Param(pname.to_string()));
            } else if !tok.is_empty() && tok.chars().all(|c| c.is_ascii_digit()) {
                // Integer literal: an attribute pinned to this value.
                let v: Value = tok.parse().map_err(|_| {
                    perr(full, tok, "integer literal out of range (max 4294967295)")
                })?;
                ids.push(intern(tok));
                terms.push(Term::Const(v));
            } else if is_ident(tok) {
                let id = intern(tok);
                ids.push(id);
                terms.push(Term::Var(Attr(id)));
            } else {
                return Err(perr(
                    full,
                    if tok.is_empty() { raw } else { tok },
                    "bad attribute identifier",
                ));
            }
        }
        if ids.is_empty() {
            return Err(perr(full, rel_name, "atom with no attributes"));
        }
        let schema = Schema::new(ids.into_iter().map(Attr).collect())?;
        atoms.push(Atom::with_terms(rel_name, schema, terms));
        rest = rest[close + 1..].trim_start_matches([',', ' ', '\n', '\t']);
    }
    if atoms.is_empty() {
        return Err(perr(full, body, "query has no atoms"));
    }

    // Validate the head (if it named attributes): it must bind exactly the
    // body's *variable* attributes — no projection — though naming the
    // constant/parameter attributes too is accepted (their columns are in
    // the result regardless).
    if let Some((head, _)) = body.split_once(":-") {
        if let (Some(open), Some(close)) = (head.find('('), head.find(')')) {
            let mut head_ids: Vec<u32> = Vec::new();
            for raw in head[open + 1..close].split(',') {
                let ident = raw.trim();
                if ident.is_empty() {
                    continue;
                }
                match attr_names.iter().position(|n| n == ident) {
                    Some(i) => head_ids.push(i as u32),
                    None => {
                        return Err(perr(full, ident, "head attribute not bound in body"));
                    }
                }
            }
            head_ids.sort_unstable();
            head_ids.dedup();
            // Which attributes are variables comes from the terms the atom
            // loop just classified — never re-derived from spellings.
            let mut var_ids: Vec<u32> = atoms
                .iter()
                .flat_map(|a| a.terms.iter())
                .filter_map(|t| match t {
                    Term::Var(attr) => Some(attr.0),
                    _ => None,
                })
                .collect();
            var_ids.sort_unstable();
            var_ids.dedup();
            let all_ids: Vec<u32> = (0..attr_names.len() as u32).collect();
            if !head_ids.is_empty() && head_ids != var_ids && head_ids != all_ids {
                return Err(perr(full, head, "head must bind all body variables (no projection)"));
            }
        }
    }

    Ok((JoinQuery::new(name, atoms), attr_names))
}

/// A variable identifier: alphanumeric/underscore, at least one non-digit
/// (an all-digit token is an integer literal).
fn is_ident(tok: &str) -> bool {
    !tok.is_empty()
        && tok.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !tok.chars().all(|c| c.is_ascii_digit())
}

/// Builds a [`Error::Parse`] pointing at `at` — a subslice of `full` — so
/// the error carries the byte offset and the offending token.
fn perr(full: &str, at: &str, message: impl Into<String>) -> Error {
    let offset = (at.as_ptr() as usize)
        .checked_sub(full.as_ptr() as usize)
        .filter(|&o| o <= full.len())
        .unwrap_or(0);
    let token: String = at.trim().chars().take(24).collect();
    Error::Parse { offset, token, message: message.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_running_example() {
        let (q, names) =
            parse_query("Q(a,b,c,d,e) :- R1(a,b,c), R2(a,d), R3(c,d), R4(b,e), R5(c,e)").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.atoms.len(), 5);
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
        assert_eq!(q.atoms[0].schema.arity(), 3);
        assert_eq!(q.num_attrs(), 5);
        // Equivalent to the hand-built workload query.
        assert_eq!(q.hypergraph(), crate::workload::running_example().hypergraph());
    }

    #[test]
    fn headless_form() {
        let (q, names) = parse_query("R1(x,y), R2(y,z)").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(names, vec!["x", "y", "z"]);
        assert_eq!(q.atoms[1].name, "R2");
    }

    #[test]
    fn attr_interning_is_first_use_order() {
        let (_, names) = parse_query("E(b,a), F(c,a)").unwrap();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("").is_err());
        assert!(parse_query("R1 a,b)").is_err());
        assert!(parse_query("R1(a,b").is_err());
        assert!(parse_query("R1()").is_err());
        assert!(parse_query("R1(a, )").is_err());
        assert!(parse_query("R1(a,a)").is_err()); // duplicate attr in atom
    }

    #[test]
    fn rejects_projection_heads() {
        // head binds fewer attrs than body → projection, unsupported
        assert!(parse_query("Q(a) :- R1(a,b)").is_err());
        // head with unknown attr
        assert!(parse_query("Q(z) :- R1(a,b)").is_err());
        // full head fine
        assert!(parse_query("Q(a,b) :- R1(a,b)").is_ok());
    }

    #[test]
    fn mode_prefixes_parse() {
        let (q, _, m) =
            parse_query_with_mode("COUNT(Q(a,b,c) :- R1(a,b), R2(b,c), R3(a,c))").unwrap();
        assert_eq!(m, OutputMode::Count);
        assert_eq!(q.atoms.len(), 3);

        let (_, _, m) = parse_query_with_mode("exists R1(a,b), R2(b,c)").unwrap();
        assert_eq!(m, OutputMode::Exists);

        let (_, _, m) = parse_query_with_mode("LIMIT 10 (R1(a,b), R2(b,c))").unwrap();
        assert_eq!(m, OutputMode::Limit(10));
        let (_, _, m) = parse_query_with_mode("limit 3 R1(a,b)").unwrap();
        assert_eq!(m, OutputMode::Limit(3));

        // no prefix → Rows, and the query is unchanged
        let (q, names, m) = parse_query_with_mode("Q(a,b) :- R1(a,b)").unwrap();
        assert_eq!(m, OutputMode::Rows);
        assert_eq!((q.atoms.len(), names.len()), (1, 2));
    }

    #[test]
    fn mode_prefixes_spell_equivalent_queries() {
        let (plain, _) = parse_query("R1(a,b), R2(b,c), R3(a,c)").unwrap();
        for text in [
            "COUNT(R1(a,b), R2(b,c), R3(a,c))",
            "COUNT R1(a,b), R2(b,c), R3(a,c)",
            "EXISTS(R1(a,b), R2(b,c), R3(a,c))",
            "LIMIT 5 (R1(a,b), R2(b,c), R3(a,c))",
        ] {
            let (q, _, _) = parse_query_with_mode(text).unwrap();
            assert_eq!(q.hypergraph(), plain.hypergraph(), "{text}");
        }
    }

    #[test]
    fn keyword_named_relations_stay_atoms() {
        // `COUNT(a,b)` is a relation named COUNT, not a mode prefix.
        let (q, _, m) = parse_query_with_mode("COUNT(a,b), R2(b,c)").unwrap();
        assert_eq!(m, OutputMode::Rows);
        assert_eq!(q.atoms[0].name, "COUNT");
        // ...same for LIMIT...
        let (q, _, m) = parse_query_with_mode("LIMIT(a,b), R2(b,c)").unwrap();
        assert_eq!(m, OutputMode::Rows);
        assert_eq!(q.atoms[0].name, "LIMIT");
        // ...and names merely *starting* with a keyword never match.
        let (q, _, m) = parse_query_with_mode("EXISTSX(a,b)").unwrap();
        assert_eq!(m, OutputMode::Rows);
        assert_eq!(q.atoms[0].name, "EXISTSX");
    }

    #[test]
    fn explain_prefixes_parse() {
        let (q, _, m, e) =
            parse_query_explain("EXPLAIN R1(a,b), R2(b,c), R3(a,c)").unwrap().unwrap();
        assert_eq!((m, e), (OutputMode::Rows, ExplainMode::Plan));
        assert_eq!(q.atoms.len(), 3);

        // composes with mode prefixes, case-insensitively and wrapped
        let (q, _, m, e) =
            parse_query_explain("explain analyze COUNT(R1(a,b), R2(b,c))").unwrap().unwrap();
        assert_eq!((m, e), (OutputMode::Count, ExplainMode::Analyze));
        assert_eq!(q.atoms.len(), 2);

        let (_, _, m, e) =
            parse_query_explain("EXPLAIN(LIMIT 5 (R1(a,b), R2(b,c)))").unwrap().unwrap();
        assert_eq!((m, e), (OutputMode::Limit(5), ExplainMode::Plan));

        let (_, _, m, e) =
            parse_query_explain("EXPLAIN ANALYZE (EXISTS R1(a,b))").unwrap().unwrap();
        assert_eq!((m, e), (OutputMode::Exists, ExplainMode::Analyze));

        // the explained query spells the same join as the plain text
        let (plain, _) = parse_query("R1(a,b), R2(b,c)").unwrap();
        let (q, _, _, _) = parse_query_explain("EXPLAIN COUNT(R1(a,b), R2(b,c))").unwrap().unwrap();
        assert_eq!(q.atoms, plain.atoms);
    }

    #[test]
    fn explain_named_relations_stay_atoms() {
        // no EXPLAIN keyword at all → None, text is an ordinary query
        assert!(parse_query_explain("COUNT(R1(a,b), R2(b,c))").unwrap().is_none());
        // `EXPLAIN(a,b)` is a relation named EXPLAIN, not a prefix
        assert!(parse_query_explain("EXPLAIN(a,b), R2(b,c)").unwrap().is_none());
        let (q, _, m) = parse_query_with_mode("EXPLAIN(a,b), R2(b,c)").unwrap();
        assert_eq!(m, OutputMode::Rows);
        assert_eq!(q.atoms[0].name, "EXPLAIN");
        // ...and `EXPLAIN ANALYZE(a,b)` explains an atom named ANALYZE
        let (q, _, m, e) = parse_query_explain("EXPLAIN ANALYZE(a,b)").unwrap().unwrap();
        assert_eq!((m, e), (OutputMode::Rows, ExplainMode::Plan));
        assert_eq!(q.atoms[0].name, "ANALYZE");
        // names merely starting with the keyword never match
        assert!(parse_query_explain("EXPLAINX(a,b)").unwrap().is_none());
    }

    #[test]
    fn malformed_explain_reports_offsets_in_the_original_text() {
        // a LIMIT error inside an EXPLAIN body points into the full input
        let err = parse_query_explain("EXPLAIN LIMIT R1(a,b)").unwrap_err();
        match err {
            Error::Parse { offset, message, .. } => {
                assert_eq!(&"EXPLAIN LIMIT R1(a,b)"[offset..offset + 2], "R1");
                assert!(message.contains("tuple count"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // bare EXPLAIN with nothing to explain is an ordinary parse error
        assert!(parse_query_explain("EXPLAIN").is_ok_and(|o| o.is_none()));
        assert!(parse_query_with_mode("EXPLAIN").is_err());
    }

    #[test]
    fn multibyte_text_never_panics() {
        // Regression: keyword matching must never slice inside a multibyte
        // char. Unicode relation names parse exactly as before (no mode
        // prefix), and unparseable unicode text is an error, not a panic
        // in a serving thread.
        for text in ["ΩΩΩ(a,b)", "cØunt(a,b)", "LIMITΩ(a,b)", "Ω(a,b)"] {
            let (q, _, m) = parse_query_with_mode(text).unwrap();
            assert_eq!(m, OutputMode::Rows, "{text}");
            assert_eq!(q.atoms.len(), 1, "{text}");
        }
        assert!(parse_query_with_mode("ΩΩΩΩΩ").is_err(), "no atom, but no panic either");
    }

    #[test]
    fn malformed_mode_prefixes_error() {
        assert!(parse_query_with_mode("LIMIT R1(a,b)").is_err(), "missing count");
        assert!(parse_query_with_mode("COUNT").is_err(), "no query after prefix");
        assert!(parse_query_with_mode("COUNT(R1(a,b)").is_err(), "unbalanced wrapper");
    }

    #[test]
    fn limit_edge_counts_are_pinned_down() {
        // LIMIT 0 is a legal query: Limit(0) mode, empty answer downstream.
        let (q, _, m) = parse_query_with_mode("LIMIT 0 (R1(a,b), R2(b,c))").unwrap();
        assert_eq!(m, OutputMode::Limit(0));
        assert_eq!(q.atoms.len(), 2);
        // A count too large for usize saturates to "all rows" instead of
        // erroring — any limit ≥ the cardinality means the same thing.
        let (_, _, m) = parse_query_with_mode("LIMIT 99999999999999999999 R1(a,b)").unwrap();
        assert_eq!(m, OutputMode::Limit(usize::MAX));
        let (_, _, m) = parse_query_with_mode(&format!("LIMIT {} R1(a,b)", usize::MAX)).unwrap();
        assert_eq!(m, OutputMode::Limit(usize::MAX));
    }

    #[test]
    fn literals_and_params_parse_into_terms() {
        use crate::query::Bindings;
        let (q, names) = parse_query("Q(b,c) :- R1(5,b), R2(b,c), R3(5,c)").unwrap();
        // "5" interns once, like a variable would.
        assert_eq!(names, vec!["5", "b", "c"]);
        assert_eq!(q.atoms[0].terms[0], Term::Const(5));
        assert_eq!(q.atoms[0].terms[1], Term::Var(Attr(1)));
        assert_eq!(q.const_bindings().unwrap().pairs(), &[(Attr(0), 5)]);
        assert!(q.param_attrs().is_empty());

        let (q, names) = parse_query("R1($v,b), R2(b,$w)").unwrap();
        assert_eq!(names, vec!["$v", "b", "$w"]);
        assert_eq!(q.atoms[0].terms[0], Term::Param("v".into()));
        assert_eq!(q.param_attrs(), vec![("v".to_string(), Attr(0)), ("w".to_string(), Attr(2))]);
        let bound = q.resolve_bindings(&Bindings::new().set("v", 1).set("w", 2)).unwrap();
        assert_eq!(bound.pairs(), &[(Attr(0), 1), (Attr(2), 2)]);

        // Repeated parameters share one attribute (equality by definition).
        let (q, _) = parse_query("R1($v,b), R2($v,c)").unwrap();
        assert_eq!(q.param_attrs().len(), 1);
        assert_eq!(q.atoms[0].schema.attrs()[0], q.atoms[1].schema.attrs()[0]);
    }

    #[test]
    fn bound_query_shape_matches_unbound() {
        // A literal position is an ordinary attribute to the planner: the
        // hypergraph of R1(5,b),R2(b,c),R3(5,c) equals R1(a,b),R2(b,c),R3(a,c).
        let (bound, _) = parse_query("R1(5,b), R2(b,c), R3(5,c)").unwrap();
        let (free, _) = parse_query("R1(a,b), R2(b,c), R3(a,c)").unwrap();
        assert_eq!(bound.hypergraph(), free.hypergraph());
    }

    #[test]
    fn mixed_alnum_tokens_stay_variables() {
        // Pre-literal texts like x1/v2 must keep parsing as variables; only
        // all-digit tokens are constants.
        let (q, names) = parse_query("R1(x1,b2), R2(b2,x1)").unwrap();
        assert_eq!(names, vec!["x1", "b2"]);
        assert!(!q.has_bound_terms());
    }

    #[test]
    fn heads_cover_variables_not_constants() {
        // Head binds the variables; the constant column is implicit.
        assert!(parse_query("Q(b,c) :- R1(5,b), R2(b,c)").is_ok());
        // Naming every attribute (incl. the literal) is accepted too.
        assert!(parse_query("Q(5,b,c) :- R1(5,b), R2(b,c)").is_ok());
        // Projection is still rejected.
        assert!(parse_query("Q(b) :- R1(5,b), R2(b,c)").is_err());
        // Params behave like constants for head purposes.
        assert!(parse_query("Q(b,c) :- R1($v,b), R2(b,c)").is_ok());
    }

    #[test]
    fn parse_errors_carry_byte_offsets_and_tokens() {
        let err = parse_query("R1(a,b), R2(b,c").unwrap_err();
        let Error::Parse { offset, token, message } = &err else {
            panic!("expected Error::Parse, got {err:?}")
        };
        assert_eq!(*offset, 9, "offset of the unclosed atom");
        assert!(token.starts_with("R2(b,c"), "token: {token}");
        assert!(message.contains("unclosed"));

        // Offsets are relative to the text handed to the *entry point*,
        // mode prefix included.
        let err = parse_query_with_mode("COUNT(R1(a,b), R2(b,!c))").unwrap_err();
        let Error::Parse { offset, token, .. } = &err else { panic!("{err:?}") };
        assert_eq!(&"COUNT(R1(a,b), R2(b,!c))"[*offset..*offset + 2], "!c");
        assert_eq!(token, "!c");

        // Bad parameter and out-of-range literal point at their tokens.
        let err = parse_query("R1($, b)").unwrap_err();
        assert!(matches!(err, Error::Parse { offset: 3, .. }), "{err:?}");
        let err = parse_query("R1(99999999999, b)").unwrap_err();
        let Error::Parse { message, .. } = &err else { panic!("{err:?}") };
        assert!(message.contains("out of range"));
    }

    #[test]
    fn triangle_matches_workload_builder() {
        let (q, _) = parse_query("Q1(a,b,c) :- R1(a,b), R2(b,c), R3(a,c)").unwrap();
        let built = crate::workload::paper_query(crate::workload::PaperQuery::Q1);
        assert_eq!(q.hypergraph(), built.hypergraph());
    }
}
