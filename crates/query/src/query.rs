//! Natural-join queries (Eq. (1) of the paper).

use crate::hypergraph::Hypergraph;
use adj_relational::{Attr, Database, Relation, Schema};

/// One atom `R_i(attrs(R_i))` of a join query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Name of the relation in the database (e.g. `"R1"`).
    pub name: String,
    /// The atom's schema (which query attributes it binds, in order).
    pub schema: Schema,
}

impl Atom {
    /// Creates an atom.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Atom { name: name.into(), schema }
    }
}

/// A natural join query `Q :- R1 ⋈ R2 ⋈ … ⋈ Rm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinQuery {
    /// Human-readable query name (`"Q5"` etc.).
    pub name: String,
    /// The atoms, in declaration order.
    pub atoms: Vec<Atom>,
}

impl JoinQuery {
    /// Creates a query from atoms.
    pub fn new(name: impl Into<String>, atoms: Vec<Atom>) -> Self {
        JoinQuery { name: name.into(), atoms }
    }

    /// Builds a query over binary atoms given `(x, y)` attribute-id pairs —
    /// the shape of every subgraph query in the paper's workload. Atom `i`
    /// is named `R{i+1}`.
    pub fn from_edges(name: impl Into<String>, edges: &[(u32, u32)]) -> Self {
        let atoms = edges
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Atom::new(format!("R{}", i + 1), Schema::from_ids(&[x, y])))
            .collect();
        JoinQuery::new(name, atoms)
    }

    /// `attrs(Q)`: the distinct attributes, sorted by id. The paper assumes
    /// an arbitrary global order `ord`; sorted-by-id is our canonical one.
    pub fn attrs(&self) -> Vec<Attr> {
        let mut mask = 0u64;
        for a in &self.atoms {
            mask |= a.schema.mask();
        }
        (0..64).filter(|i| mask & (1 << i) != 0).map(Attr).collect()
    }

    /// Number of distinct attributes `n = |attrs(Q)|`.
    pub fn num_attrs(&self) -> usize {
        self.attrs().len()
    }

    /// The query's hypergraph `H = (V, E)` (Sec. II).
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.num_attrs() as u32,
            self.atoms.iter().map(|a| a.schema.mask()).collect(),
        )
    }

    /// Atoms containing `attr` — the set `R_{i+1}` of Algorithm 1 line 4.
    pub fn atoms_with(&self, attr: Attr) -> Vec<&Atom> {
        self.atoms.iter().filter(|a| a.schema.contains(attr)).collect()
    }

    /// Instantiates a database for a "test-case" (Sec. VII-A): every atom
    /// receives a copy of `graph` (a binary relation) renamed to the atom's
    /// schema. Panics if any atom is not binary.
    pub fn instantiate(&self, graph: &Relation) -> Database {
        assert_eq!(graph.arity(), 2, "paper test-cases use binary (graph) relations");
        let mut db = Database::new();
        for atom in &self.atoms {
            assert_eq!(atom.schema.arity(), 2, "subgraph workload atoms are binary");
            let from = graph.schema().attrs().to_vec();
            let to = atom.schema.attrs().to_vec();
            let renamed =
                graph.rename(|a| if a == from[0] { to[0] } else { to[1] }).expect("binary rename");
            db.insert(atom.name.clone(), renamed);
        }
        db
    }

    /// Verifies (in debug/test harnesses) that `tuple` over `order` is a
    /// result tuple: its projection onto every atom is in that atom's
    /// relation. This is the paper's definition of a resulting tuple τ.
    pub fn verify_tuple(
        &self,
        db: &Database,
        order: &[Attr],
        tuple: &[adj_relational::Value],
    ) -> bool {
        for atom in &self.atoms {
            let rel = match db.get(&atom.name) {
                Ok(r) => r,
                Err(_) => return false,
            };
            let mut proj = Vec::with_capacity(atom.schema.arity());
            for &a in atom.schema.attrs() {
                match order.iter().position(|&o| o == a) {
                    Some(p) => proj.push(tuple[p]),
                    None => return false,
                }
            }
            if !rel.contains_row(&proj) {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} :- ", self.name)?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}{}", a.name, a.schema)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adj_relational::Value;

    #[test]
    fn attrs_and_hypergraph() {
        // The running example Q (Eq. (2)).
        let q = JoinQuery::new(
            "Q",
            vec![
                Atom::new("R1", Schema::from_ids(&[0, 1, 2])),
                Atom::new("R2", Schema::from_ids(&[0, 3])),
                Atom::new("R3", Schema::from_ids(&[2, 3])),
                Atom::new("R4", Schema::from_ids(&[1, 4])),
                Atom::new("R5", Schema::from_ids(&[2, 4])),
            ],
        );
        assert_eq!(q.num_attrs(), 5);
        assert_eq!(q.attrs(), vec![Attr(0), Attr(1), Attr(2), Attr(3), Attr(4)]);
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 5);
        assert_eq!(q.atoms_with(Attr(2)).len(), 3); // R1, R3, R5
    }

    #[test]
    fn from_edges_names_atoms() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(q.atoms[2].name, "R3");
        assert_eq!(q.to_string(), "Q1 :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c)");
    }

    #[test]
    fn instantiate_copies_graph_per_atom() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        let g = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (2, 3), (1, 3)]);
        let db = q.instantiate(&g);
        assert_eq!(db.len(), 3);
        assert_eq!(db.get("R2").unwrap().schema().attrs(), &[Attr(1), Attr(2)]);
        assert_eq!(db.get("R2").unwrap().len(), 3);
    }

    #[test]
    fn verify_tuple_checks_projections() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        let g = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (2, 3), (1, 3)]);
        let db = q.instantiate(&g);
        let order = [Attr(0), Attr(1), Attr(2)];
        let t: Vec<Value> = vec![1, 2, 3]; // triangle 1-2-3
        assert!(q.verify_tuple(&db, &order, &t));
        let bad: Vec<Value> = vec![1, 2, 4];
        assert!(!q.verify_tuple(&db, &order, &bad));
    }
}
