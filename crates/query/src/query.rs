//! Natural-join queries (Eq. (1) of the paper).

use crate::hypergraph::Hypergraph;
use adj_relational::{Attr, BoundValues, Database, Error, Relation, Result, Schema, Value};

/// One argument position of an atom: the three-valued term model of the
/// prepared-query contract.
///
/// Every position — including constants and parameters — is backed by a
/// query attribute in the atom's [`Schema`] (the parser interns literals
/// and `$name` placeholders exactly like variables), so the planner's
/// hypergraph/GHD/order machinery never changes. The term records the
/// position's *surface form*: whether the attribute is free, pinned to an
/// inline literal, or awaiting a bind-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A free join variable bound by the query's other atoms.
    Var(Attr),
    /// An inline literal constant: the attribute is fixed to this value.
    Const(Value),
    /// A `$name` placeholder: the attribute's value arrives at bind time.
    Param(String),
}

impl Term {
    /// Whether the term pins its attribute to a constant (inline literal or
    /// bind-time parameter) rather than leaving it a free variable.
    pub fn is_bound(&self) -> bool {
        !matches!(self, Term::Var(_))
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Var(a) => write!(f, "{a}"),
            Term::Const(v) => write!(f, "{v}"),
            Term::Param(name) => write!(f, "${name}"),
        }
    }
}

/// One atom `R_i(args(R_i))` of a join query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Name of the relation in the database (e.g. `"R1"`).
    pub name: String,
    /// The atom's schema (which query attributes it binds, in order). Every
    /// argument position has one — constant and parameter positions are
    /// backed by interned attributes just like variables.
    pub schema: Schema,
    /// The surface form of each argument position, parallel to
    /// `schema.attrs()`.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an all-variable atom (the classic natural-join form).
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let terms = schema.attrs().iter().map(|&a| Term::Var(a)).collect();
        Atom { name: name.into(), schema, terms }
    }

    /// Creates an atom with explicit terms (the parser's entry point for
    /// literals and `$name` placeholders). `terms` must be parallel to the
    /// schema: one term per attribute position.
    pub fn with_terms(name: impl Into<String>, schema: Schema, terms: Vec<Term>) -> Self {
        assert_eq!(terms.len(), schema.arity(), "one term per schema position");
        Atom { name: name.into(), schema, terms }
    }
}

/// Bind-time values for a prepared query's `$name` parameters.
///
/// Built with the fluent [`Bindings::set`]; names may be written with or
/// without the `$` sigil. Re-setting a name overwrites its value (builder
/// semantics), so a `Bindings` can be reused across a re-bind loop.
///
/// ```
/// use adj_query::Bindings;
/// let b = Bindings::new().set("v", 7).set("$w", 9);
/// assert_eq!(b.get("v"), Some(7));
/// assert_eq!(b.get("w"), Some(9));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    pairs: Vec<(String, Value)>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Sets parameter `name` (with or without the leading `$`) to `value`,
    /// overwriting any previous value.
    pub fn set(mut self, name: impl AsRef<str>, value: Value) -> Self {
        let name = name.as_ref().trim_start_matches('$');
        match self.pairs.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = value,
            None => self.pairs.push((name.to_string(), value)),
        }
        self
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<Value> {
        let name = name.trim_start_matches('$');
        self.pairs.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `(name, value)` pairs in insertion order.
    pub fn pairs(&self) -> &[(String, Value)] {
        &self.pairs
    }
}

/// A natural join query `Q :- R1 ⋈ R2 ⋈ … ⋈ Rm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinQuery {
    /// Human-readable query name (`"Q5"` etc.).
    pub name: String,
    /// The atoms, in declaration order.
    pub atoms: Vec<Atom>,
}

impl JoinQuery {
    /// Creates a query from atoms.
    pub fn new(name: impl Into<String>, atoms: Vec<Atom>) -> Self {
        JoinQuery { name: name.into(), atoms }
    }

    /// Builds a query over binary atoms given `(x, y)` attribute-id pairs —
    /// the shape of every subgraph query in the paper's workload. Atom `i`
    /// is named `R{i+1}`.
    pub fn from_edges(name: impl Into<String>, edges: &[(u32, u32)]) -> Self {
        let atoms = edges
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Atom::new(format!("R{}", i + 1), Schema::from_ids(&[x, y])))
            .collect();
        JoinQuery::new(name, atoms)
    }

    /// `attrs(Q)`: the distinct attributes, sorted by id. The paper assumes
    /// an arbitrary global order `ord`; sorted-by-id is our canonical one.
    pub fn attrs(&self) -> Vec<Attr> {
        let mut mask = 0u64;
        for a in &self.atoms {
            mask |= a.schema.mask();
        }
        (0..64).filter(|i| mask & (1 << i) != 0).map(Attr).collect()
    }

    /// Number of distinct attributes `n = |attrs(Q)|`.
    pub fn num_attrs(&self) -> usize {
        self.attrs().len()
    }

    /// The query's hypergraph `H = (V, E)` (Sec. II).
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.num_attrs() as u32,
            self.atoms.iter().map(|a| a.schema.mask()).collect(),
        )
    }

    /// Atoms containing `attr` — the set `R_{i+1}` of Algorithm 1 line 4.
    pub fn atoms_with(&self, attr: Attr) -> Vec<&Atom> {
        self.atoms.iter().filter(|a| a.schema.contains(attr)).collect()
    }

    /// Whether any atom position is a constant or parameter.
    pub fn has_bound_terms(&self) -> bool {
        self.atoms.iter().any(|a| a.terms.iter().any(Term::is_bound))
    }

    /// The query's `$name` parameters as `(name, attr)` pairs, in first
    /// occurrence order, deduplicated (the same name in several positions
    /// interns to one attribute).
    pub fn param_attrs(&self) -> Vec<(String, Attr)> {
        let mut params: Vec<(String, Attr)> = Vec::new();
        for atom in &self.atoms {
            for (term, &attr) in atom.terms.iter().zip(atom.schema.attrs()) {
                if let Term::Param(name) = term {
                    if !params.iter().any(|(n, _)| n == name) {
                        params.push((name.clone(), attr));
                    }
                }
            }
        }
        params
    }

    /// The inline-literal selections: every `Const` position's
    /// `attr = value` pair. Repeated literals intern to one attribute, so
    /// the set is conflict-free by construction for parsed queries.
    pub fn const_bindings(&self) -> Result<BoundValues> {
        let mut pairs: Vec<(Attr, Value)> = Vec::new();
        for atom in &self.atoms {
            for (term, &attr) in atom.terms.iter().zip(atom.schema.attrs()) {
                if let Term::Const(v) = term {
                    pairs.push((attr, *v));
                }
            }
        }
        BoundValues::new(pairs)
    }

    /// Resolves the full bound-value set of one execution: inline literals
    /// plus the supplied parameter values. Every parameter must be bound
    /// ([`Error::UnboundParam`]) and every supplied name must exist
    /// ([`Error::UnknownParam`]) — a typo'd binding is an error, not a
    /// silently-ignored no-op.
    pub fn resolve_bindings(&self, bindings: &Bindings) -> Result<BoundValues> {
        let params = self.param_attrs();
        let mut pairs: Vec<(Attr, Value)> = Vec::new();
        for (name, attr) in &params {
            match bindings.get(name) {
                Some(v) => pairs.push((*attr, v)),
                None => return Err(Error::UnboundParam { name: name.clone() }),
            }
        }
        for (name, _) in bindings.pairs() {
            if !params.iter().any(|(n, _)| n == name) {
                return Err(Error::UnknownParam { name: name.clone() });
            }
        }
        self.const_bindings()?.merged(&BoundValues::new(pairs)?)
    }

    /// A copy with every inline literal's *value* erased (set to 0),
    /// preserving the term kinds and attribute structure. Two queries that
    /// differ only in constant values erase to identical queries — the
    /// discipline check behind "constants never leak into `plan_key`".
    pub fn erase_bound_values(&self) -> JoinQuery {
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                let terms = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(_) => Term::Const(0),
                        other => other.clone(),
                    })
                    .collect();
                Atom::with_terms(a.name.clone(), a.schema.clone(), terms)
            })
            .collect();
        JoinQuery::new(self.name.clone(), atoms)
    }

    /// Instantiates a database for a "test-case" (Sec. VII-A): every atom
    /// receives a copy of `graph` (a binary relation) renamed to the atom's
    /// schema. Panics if any atom is not binary.
    pub fn instantiate(&self, graph: &Relation) -> Database {
        assert_eq!(graph.arity(), 2, "paper test-cases use binary (graph) relations");
        let mut db = Database::new();
        for atom in &self.atoms {
            assert_eq!(atom.schema.arity(), 2, "subgraph workload atoms are binary");
            let from = graph.schema().attrs().to_vec();
            let to = atom.schema.attrs().to_vec();
            let renamed =
                graph.rename(|a| if a == from[0] { to[0] } else { to[1] }).expect("binary rename");
            db.insert(atom.name.clone(), renamed);
        }
        db
    }

    /// Verifies (in debug/test harnesses) that `tuple` over `order` is a
    /// result tuple: its projection onto every atom is in that atom's
    /// relation. This is the paper's definition of a resulting tuple τ.
    pub fn verify_tuple(
        &self,
        db: &Database,
        order: &[Attr],
        tuple: &[adj_relational::Value],
    ) -> bool {
        for atom in &self.atoms {
            let rel = match db.get(&atom.name) {
                Ok(r) => r,
                Err(_) => return false,
            };
            let mut proj = Vec::with_capacity(atom.schema.arity());
            for &a in atom.schema.attrs() {
                match order.iter().position(|&o| o == a) {
                    Some(p) => proj.push(tuple[p]),
                    None => return false,
                }
            }
            if !rel.contains_row(&proj) {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} :- ", self.name)?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}(", a.name)?;
            for (j, t) in a.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adj_relational::Value;

    #[test]
    fn attrs_and_hypergraph() {
        // The running example Q (Eq. (2)).
        let q = JoinQuery::new(
            "Q",
            vec![
                Atom::new("R1", Schema::from_ids(&[0, 1, 2])),
                Atom::new("R2", Schema::from_ids(&[0, 3])),
                Atom::new("R3", Schema::from_ids(&[2, 3])),
                Atom::new("R4", Schema::from_ids(&[1, 4])),
                Atom::new("R5", Schema::from_ids(&[2, 4])),
            ],
        );
        assert_eq!(q.num_attrs(), 5);
        assert_eq!(q.attrs(), vec![Attr(0), Attr(1), Attr(2), Attr(3), Attr(4)]);
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 5);
        assert_eq!(q.atoms_with(Attr(2)).len(), 3); // R1, R3, R5
    }

    #[test]
    fn from_edges_names_atoms() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(q.atoms[2].name, "R3");
        assert_eq!(q.to_string(), "Q1 :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c)");
    }

    #[test]
    fn instantiate_copies_graph_per_atom() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        let g = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (2, 3), (1, 3)]);
        let db = q.instantiate(&g);
        assert_eq!(db.len(), 3);
        assert_eq!(db.get("R2").unwrap().schema().attrs(), &[Attr(1), Attr(2)]);
        assert_eq!(db.get("R2").unwrap().len(), 3);
    }

    #[test]
    fn term_model_and_binding_resolution() {
        // R1(5, b), R2(b, $v): one literal, one parameter.
        let q = JoinQuery::new(
            "Q",
            vec![
                Atom::with_terms(
                    "R1",
                    Schema::from_ids(&[0, 1]),
                    vec![Term::Const(5), Term::Var(Attr(1))],
                ),
                Atom::with_terms(
                    "R2",
                    Schema::from_ids(&[1, 2]),
                    vec![Term::Var(Attr(1)), Term::Param("v".into())],
                ),
            ],
        );
        assert!(q.has_bound_terms());
        assert_eq!(q.param_attrs(), vec![("v".to_string(), Attr(2))]);
        assert_eq!(q.const_bindings().unwrap().pairs(), &[(Attr(0), 5)]);

        let resolved = q.resolve_bindings(&Bindings::new().set("v", 9)).unwrap();
        assert_eq!(resolved.pairs(), &[(Attr(0), 5), (Attr(2), 9)]);

        let missing = q.resolve_bindings(&Bindings::new()).unwrap_err();
        assert!(matches!(missing, adj_relational::Error::UnboundParam { .. }));
        let typo = q.resolve_bindings(&Bindings::new().set("v", 1).set("w", 2)).unwrap_err();
        assert!(matches!(typo, adj_relational::Error::UnknownParam { .. }));

        // Erasure keeps structure, drops values.
        let erased = q.erase_bound_values();
        assert_eq!(erased.atoms[0].terms[0], Term::Const(0));
        assert_eq!(erased.atoms[1].terms[1], Term::Param("v".into()));
        assert_eq!(erased.atoms[0].schema, q.atoms[0].schema);

        assert_eq!(q.to_string(), "Q :- R1(5,b) ⋈ R2(b,$v)");
    }

    #[test]
    fn plain_queries_have_no_bound_terms() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        assert!(!q.has_bound_terms());
        assert!(q.param_attrs().is_empty());
        assert!(q.const_bindings().unwrap().is_empty());
        assert!(q.resolve_bindings(&Bindings::new()).unwrap().is_empty());
    }

    #[test]
    fn verify_tuple_checks_projections() {
        let q = JoinQuery::from_edges("Q1", &[(0, 1), (1, 2), (0, 2)]);
        let g = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (2, 3), (1, 3)]);
        let db = q.instantiate(&g);
        let order = [Attr(0), Attr(1), Attr(2)];
        let t: Vec<Value> = vec![1, 2, 3]; // triangle 1-2-3
        assert!(q.verify_tuple(&db, &order, &t));
        let bad: Vec<Value> = vec![1, 2, 4];
        assert!(!q.verify_tuple(&db, &order, &bad));
    }
}
