//! Query hypergraphs `H = (V, E)` (Sec. II of the paper).
//!
//! Vertices are attribute ids `0..n` and hyperedges are attribute bitmasks —
//! the GHD search enumerates thousands of edge subsets, so everything here is
//! O(1) mask arithmetic.

/// A hypergraph over at most 64 vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vertices: u32,
    /// One bitmask of vertices per hyperedge, in atom order.
    edges: Vec<u64>,
}

impl Hypergraph {
    /// Creates a hypergraph; each edge must be a non-empty subset of
    /// `0..num_vertices`.
    pub fn new(num_vertices: u32, edges: Vec<u64>) -> Self {
        assert!(num_vertices <= 64);
        let universe: u64 = if num_vertices == 64 { !0 } else { (1u64 << num_vertices) - 1 };
        for &e in &edges {
            assert!(e != 0 && e & !universe == 0, "edge out of vertex range");
        }
        Hypergraph { num_vertices, edges }
    }

    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of hyperedges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge `i`'s vertex mask.
    #[inline]
    pub fn edge(&self, i: usize) -> u64 {
        self.edges[i]
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Mask of all vertices.
    #[inline]
    pub fn vertices_mask(&self) -> u64 {
        if self.num_vertices == 64 {
            !0
        } else {
            (1u64 << self.num_vertices) - 1
        }
    }

    /// Union of the vertex sets of the edges selected by `edge_set` (bitmask
    /// over edge indices).
    pub fn vertices_of(&self, edge_set: u64) -> u64 {
        let mut m = 0u64;
        let mut s = edge_set;
        while s != 0 {
            let i = s.trailing_zeros() as usize;
            m |= self.edges[i];
            s &= s - 1;
        }
        m
    }

    /// Edges incident to any vertex in `vmask`, as an edge bitmask.
    pub fn edges_touching(&self, vmask: u64) -> u64 {
        let mut out = 0u64;
        for (i, &e) in self.edges.iter().enumerate() {
            if e & vmask != 0 {
                out |= 1 << i;
            }
        }
        out
    }

    /// Whether the sub-hypergraph induced by `edge_set` is connected
    /// (sharing a vertex connects two edges). Empty/singleton sets count as
    /// connected.
    pub fn is_connected_edges(&self, edge_set: u64) -> bool {
        if edge_set == 0 {
            return true;
        }
        let first = edge_set.trailing_zeros();
        let mut seen: u64 = 1 << first;
        let mut frontier_vs = self.edges[first as usize];
        loop {
            let mut grew = false;
            let mut rest = edge_set & !seen;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if self.edges[i] & frontier_vs != 0 {
                    seen |= 1 << i;
                    frontier_vs |= self.edges[i];
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        seen == edge_set
    }

    /// Partitions `edge_set` into connected components where two edges are
    /// adjacent iff they share a vertex **outside** `separator_vs`. This is
    /// the component split the GHD recursion performs after choosing a bag.
    pub fn components_outside(&self, edge_set: u64, separator_vs: u64) -> Vec<u64> {
        let mut remaining = edge_set;
        let mut comps = Vec::new();
        while remaining != 0 {
            let seed = remaining.trailing_zeros() as usize;
            let mut comp: u64 = 1 << seed;
            let mut vs = self.edges[seed] & !separator_vs;
            loop {
                let mut grew = false;
                let mut rest = remaining & !comp;
                while rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if self.edges[i] & vs != 0 {
                        comp |= 1 << i;
                        vs |= self.edges[i] & !separator_vs;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            comps.push(comp);
            remaining &= !comp;
        }
        comps
    }

    /// Whether the whole hypergraph is acyclic (α-acyclic), decided by the
    /// GYO reduction (repeatedly remove ear edges / isolated vertices).
    /// Used to sanity-check that pre-computing all non-trivial GHD bags
    /// yields an (almost) acyclic residual query — the paper's intuition in
    /// Sec. III-A.
    pub fn is_acyclic(&self) -> bool {
        let mut edges: Vec<u64> = self.edges.clone();
        loop {
            let mut changed = false;
            // Remove vertices appearing in exactly one edge.
            for v in 0..self.num_vertices {
                let vm = 1u64 << v;
                let cnt = edges.iter().filter(|&&e| e & vm != 0).count();
                if cnt == 1 {
                    for e in edges.iter_mut() {
                        if *e & vm != 0 {
                            *e &= !vm;
                            changed = true;
                        }
                    }
                }
            }
            // Remove empty edges and edges contained in another edge.
            let before = edges.len();
            edges.retain(|&e| e != 0);
            let snapshot = edges.clone();
            edges = snapshot
                .iter()
                .enumerate()
                .filter(|(i, &e)| {
                    !snapshot
                        .iter()
                        .enumerate()
                        .any(|(j, &f)| j != *i && e & !f == 0 && (f != e || j < *i))
                })
                .map(|(_, &e)| e)
                .collect();
            if edges.len() != before {
                changed = true;
            }
            if edges.is_empty() {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }
}

/// Iterates the non-empty subsets of `set` (a bitmask), smallest first by
/// value. Standard subset-enumeration trick used by the GHD search.
pub fn subsets_of(set: u64) -> impl Iterator<Item = u64> {
    let mut sub = 0u64;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        sub = sub.wrapping_sub(set) & set;
        if sub == 0 {
            done = true;
            return None;
        }
        Some(sub)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example hypergraph (Fig. 2): edges abc, ad, cd, be, ce.
    fn example() -> Hypergraph {
        Hypergraph::new(5, vec![0b00111, 0b01001, 0b01100, 0b10010, 0b10100])
    }

    #[test]
    fn vertices_of_unions_edges() {
        let h = example();
        assert_eq!(h.vertices_of(0b00011), 0b01111); // abc ∪ ad
        assert_eq!(h.vertices_of(0), 0);
    }

    #[test]
    fn connectivity() {
        let h = example();
        assert!(h.is_connected_edges(0b11111));
        assert!(h.is_connected_edges(0b00001));
        // ad and be share no vertex
        assert!(!h.is_connected_edges(0b01010));
        assert!(h.is_connected_edges(0));
    }

    #[test]
    fn components_outside_separator() {
        let h = example();
        // Separator = vertices of R1(a,b,c). Remaining edges ad, cd, be, ce:
        // ad–cd connect through d; be–ce connect through e. Two components.
        let sep = h.edge(0);
        let comps = h.components_outside(0b11110, sep);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&0b00110));
        assert!(comps.contains(&0b11000));
    }

    #[test]
    fn acyclicity() {
        // Path a-b-c is acyclic.
        let path = Hypergraph::new(3, vec![0b011, 0b110]);
        assert!(path.is_acyclic());
        // Triangle is cyclic.
        let tri = Hypergraph::new(3, vec![0b011, 0b110, 0b101]);
        assert!(!tri.is_acyclic());
        // The example query's hypergraph is cyclic.
        assert!(!example().is_acyclic());
        // Replacing {ad, cd} and {be, ce} with joined edges acd, bce makes
        // it α-acyclic: {abc, acd, bce}.
        let joined = Hypergraph::new(5, vec![0b00111, 0b01101, 0b10110]);
        assert!(joined.is_acyclic());
    }

    #[test]
    fn subset_enumeration_counts() {
        let subs: Vec<u64> = subsets_of(0b1011).collect();
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&0b1011));
        assert!(subs.contains(&0b0001));
        assert!(!subs.contains(&0));
        assert!(subs.iter().all(|s| s & !0b1011 == 0));
    }

    #[test]
    fn edges_touching_mask() {
        let h = example();
        // vertex e (bit 4) touches be and ce (edges 3, 4)
        assert_eq!(h.edges_touching(1 << 4), 0b11000);
    }
}
