//! [`BindingBatch`]: the normalized input of a batched execution.

use adj_relational::{Attr, BoundValues, Error, Result, Value};
use std::collections::HashMap;

/// A batch of parameter bindings for one prepared query shape.
///
/// Construction normalizes the submissions once, so the executor (and the
/// per-binding result cache above it) work on canonical inputs:
///
/// * every submission must bind the **same attribute set** (they are
///   bindings of one shape; a mismatch is a typed error);
/// * duplicate submissions — identical value vectors — collapse onto one
///   *unique* binding that is executed once, with [`BindingBatch::slot_of`]
///   mapping each submission back to its result;
/// * unique bindings are sorted by value vector, so identical batches
///   normalize identically regardless of submission order.
///
/// The executor later re-projects the value vectors into the plan's
/// attribute-*order* positions (and re-sorts lexicographically in that
/// projection) — that part depends on the plan, so it is not baked in here.
#[derive(Debug, Clone)]
pub struct BindingBatch {
    /// The attribute set every submission binds, ascending.
    attrs: Vec<Attr>,
    /// Deduplicated bindings, sorted by value vector.
    unique: Vec<BoundValues>,
    /// For each submission index: the index into `unique` holding its
    /// values.
    slot_of: Vec<usize>,
}

impl BindingBatch {
    /// Normalizes `bindings` into a batch. Every submission must bind the
    /// same attribute set; the first submission fixes it.
    pub fn new(bindings: Vec<BoundValues>) -> Result<Self> {
        let attrs: Vec<Attr> = bindings
            .first()
            .map(|b| b.pairs().iter().map(|&(a, _)| a).collect())
            .unwrap_or_default();
        let mut unique: Vec<BoundValues> = Vec::new();
        let mut by_values: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut slot_of = Vec::with_capacity(bindings.len());
        for b in bindings {
            let bound_attrs: Vec<Attr> = b.pairs().iter().map(|&(a, _)| a).collect();
            if bound_attrs != attrs {
                return Err(Error::SchemaMismatch {
                    left: format!("batch binds {attrs:?}"),
                    right: format!("submission binds {bound_attrs:?}"),
                });
            }
            let values: Vec<Value> = b.pairs().iter().map(|&(_, v)| v).collect();
            let next = unique.len();
            let slot = *by_values.entry(values).or_insert(next);
            if slot == next {
                unique.push(b);
            }
            slot_of.push(slot);
        }
        // Canonical order: sort unique bindings by value vector and remap
        // the submission slots.
        let mut perm: Vec<usize> = (0..unique.len()).collect();
        perm.sort_by(|&a, &b| unique[a].pairs().cmp(unique[b].pairs()));
        let mut new_pos = vec![0usize; unique.len()];
        for (new, &old) in perm.iter().enumerate() {
            new_pos[old] = new;
        }
        let unique = perm.iter().map(|&i| unique[i].clone()).collect();
        for s in &mut slot_of {
            *s = new_pos[*s];
        }
        Ok(BindingBatch { attrs, unique, slot_of })
    }

    /// The attribute set every submission binds, ascending.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// The deduplicated bindings, sorted by value vector.
    pub fn unique(&self) -> &[BoundValues] {
        &self.unique
    }

    /// For each submission index, the index into [`BindingBatch::unique`]
    /// holding its values.
    pub fn slot_of(&self) -> &[usize] {
        &self.slot_of
    }

    /// Number of submissions (including duplicates).
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Whether the batch has no submissions.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Number of distinct bindings that will actually execute.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(pairs: &[(u32, Value)]) -> BoundValues {
        BoundValues::new(pairs.iter().map(|&(a, v)| (Attr(a), v)).collect()).unwrap()
    }

    #[test]
    fn dedups_and_sorts_uniques() {
        let batch =
            BindingBatch::new(vec![bv(&[(0, 7)]), bv(&[(0, 3)]), bv(&[(0, 7)]), bv(&[(0, 3)])])
                .unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.unique_len(), 2);
        assert_eq!(batch.attrs(), &[Attr(0)]);
        let values: Vec<Value> = batch.unique().iter().map(|b| b.pairs()[0].1).collect();
        assert_eq!(values, vec![3, 7], "uniques sort by value vector");
        assert_eq!(batch.slot_of(), &[1, 0, 1, 0]);
    }

    #[test]
    fn submission_order_does_not_change_normal_form() {
        let a = BindingBatch::new(vec![bv(&[(0, 9)]), bv(&[(0, 1)]), bv(&[(0, 5)])]).unwrap();
        let b = BindingBatch::new(vec![bv(&[(0, 5)]), bv(&[(0, 9)]), bv(&[(0, 1)])]).unwrap();
        assert_eq!(
            a.unique().iter().map(|u| u.pairs().to_vec()).collect::<Vec<_>>(),
            b.unique().iter().map(|u| u.pairs().to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_mixed_attribute_sets() {
        let err = BindingBatch::new(vec![bv(&[(0, 1)]), bv(&[(1, 1)])]).unwrap_err();
        assert!(matches!(err, Error::SchemaMismatch { .. }));
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = BindingBatch::new(Vec::new()).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.unique_len(), 0);
        assert!(batch.attrs().is_empty());
    }

    #[test]
    fn multi_attr_bindings_normalize() {
        let batch = BindingBatch::new(vec![
            bv(&[(0, 2), (2, 9)]),
            bv(&[(0, 1), (2, 4)]),
            bv(&[(0, 2), (2, 9)]),
        ])
        .unwrap();
        assert_eq!(batch.attrs(), &[Attr(0), Attr(2)]);
        assert_eq!(batch.unique_len(), 2);
        assert_eq!(batch.slot_of(), &[1, 0, 1]);
    }
}
