//! [`execute_plan_batch`]: one shared shuffle, many bound joins.

use crate::BindingBatch;
use adj_cluster::Cluster;
use adj_core::{prepare_plan_locals, AdjConfig, ExecutionReport, QueryPlan};
use adj_faults::{CancelToken, FaultSite};
use adj_hcube::IndexScope;
use adj_leapfrog::{BatchedLeapfrog, JoinCounters, JoinScratch};
use adj_relational::{
    Attr, BoundValues, CountSink, Database, Error, ExistsSink, OutputMode, QueryOutput, Relation,
    Result, RowBuffer, RowSink, Schema, Trie, Value,
};
use adj_trace::{Tracer, COORDINATOR_LANE};
use std::sync::Arc;
use std::time::Instant;

/// How often batch join sinks poll the cancellation token (mirrors the
/// single-binding executor's cadence).
const SINK_CHECK_EVERY: u64 = 1024;

/// Maps a fired token onto the workspace error type.
fn cancel_err(c: adj_faults::Cancelled) -> Error {
    Error::Cancelled { deadline_exceeded: c.deadline }
}

/// The per-binding [`RowSink`] adapter of the batch path: polls the
/// [`CancelToken`] (and the `JoinEnumerate` fault-injection site) every
/// [`SINK_CHECK_EVERY`] rows and saturates when the token fires. A
/// saturated-by-cancel binding never keeps its truncated output — the
/// batch driver's `stop` hook fires on the same token, and a binding in
/// flight when it fires falls past the `completed` watermark, surfacing as
/// a per-binding [`Error::Cancelled`]. (Duplicated from the single-binding
/// executor, whose adapter is private.)
struct CancelSink<'a, S> {
    inner: S,
    cancel: &'a CancelToken,
    rows_since_check: u64,
    stopped: bool,
}

impl<'a, S: RowSink> CancelSink<'a, S> {
    fn new(inner: S, cancel: &'a CancelToken) -> Self {
        CancelSink { inner, cancel, rows_since_check: 0, stopped: false }
    }

    fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowSink> RowSink for CancelSink<'_, S> {
    fn push(&mut self, row: &[Value]) -> bool {
        self.rows_since_check += 1;
        if self.rows_since_check >= SINK_CHECK_EVERY {
            self.rows_since_check = 0;
            adj_faults::inject(FaultSite::JoinEnumerate, self.cancel);
            if self.cancel.check().is_err() {
                self.stopped = true;
                return false;
            }
        }
        self.inner.push(row)
    }

    fn saturated(&self) -> bool {
        self.stopped || self.inner.saturated()
    }
}

/// One executed driver slot's payload, as shipped back by a worker.
enum SlotData {
    /// Flat row data (`Rows`/`Limit` modes).
    Rows(Vec<Value>),
    /// This worker's local cardinality (`Count` mode).
    Count(u64),
    /// Whether this worker found a witness (`Exists` mode).
    Exists(bool),
}

/// Per-driver-slot gather accumulator.
#[derive(Default)]
struct SlotAcc {
    rows: Vec<Value>,
    count: u64,
    exists: bool,
    err: Option<Error>,
}

/// Executes every binding of `batch` against one prepared plan, sharing
/// the expensive phases across the whole batch:
///
/// * **one** admission-width pin ([`Cluster::begin_query`]), **one** bag
///   pre-computation pass, and **one** final HCube shuffle — run *unbound*
///   via [`prepare_plan_locals`], so every relation keeps its cacheable
///   identity and the whole batch joins over the same warm tries;
/// * each worker drives a [`BatchedLeapfrog`] over its local tries: the
///   batch's distinct bound rows are visited in sorted order with
///   forward-galloping cursor reuse on the bound prefix of the order;
/// * results demultiplex per *submission*: duplicate bindings execute once
///   and their output is cloned back to every submission slot.
///
/// Returns one `Result<QueryOutput>` per submission, **aligned with the
/// original submission order**, plus the batch's aggregate cost report.
/// The outer `Err` is a whole-batch failure (planning-level: unbound
/// parameter, conflicting constants, shuffle failure, worker panic); the
/// inner per-binding errors carry partial-batch outcomes — on a mid-batch
/// deadline or cancel, bindings that completed keep their results and the
/// rest observe [`Error::Cancelled`].
///
/// Results are byte-identical to looping the single-binding bound executor
/// over the submissions: bound-selection pushdown is a pure optimization
/// (the unbound shuffle partitions every output tuple onto exactly one
/// worker under any share vector), and per-worker `Limit` sampling keeps
/// its canonical smallest-rows semantics.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_batch(
    cluster: &Cluster,
    db: &Database,
    plan: &QueryPlan,
    config: &AdjConfig,
    mode: OutputMode,
    index: Option<&IndexScope<'_>>,
    batch: &BindingBatch,
    cancel: &CancelToken,
    tracer: &Tracer,
) -> Result<(Vec<Result<QueryOutput>>, ExecutionReport)> {
    let t_exec = Instant::now();
    let mut report = ExecutionReport { hot_values: plan.hot.len() as u64, ..Default::default() };
    if batch.is_empty() {
        return Ok((Vec::new(), report));
    }
    // Pin the worker width for the whole batch: one shuffle, many joins,
    // one consistent `num_workers()` throughout.
    let _active = cluster.begin_query();

    // Resolve each unique binding's full constant set: the submission's
    // values take priority, the plan's inline literals fill the rest —
    // exactly the single-binding executor's merge discipline.
    let consts = plan.query.const_bindings()?;
    let mut merged: Vec<BoundValues> = Vec::with_capacity(batch.unique_len());
    for b in batch.unique() {
        let mut pairs = b.pairs().to_vec();
        for &(a, v) in consts.pairs() {
            if b.get(a).is_none() {
                pairs.push((a, v));
            }
        }
        merged.push(BoundValues::new(pairs)?);
    }
    // Every bound position of the shape must have a value. The batch's
    // attribute set is uniform across submissions (BindingBatch enforces
    // it), so an unbound parameter is an all-or-nothing, whole-batch error.
    for (name, attr) in plan.query.param_attrs() {
        if merged[0].get(attr).is_none() {
            return Err(Error::UnboundParam { name });
        }
    }
    report.bound_values = merged[0].len() as u64;

    let schema = Schema::new(plan.order.clone())?;
    // `LIMIT 0` is a complete answer for every binding by definition.
    if mode == OutputMode::Limit(0) {
        report.other_secs = t_exec.elapsed().as_secs_f64();
        let empty: Result<QueryOutput> = Ok(QueryOutput::Rows(Relation::empty(schema)));
        return Ok((vec![empty; batch.len()], report));
    }

    // One unbound shuffle for the whole batch: every relation keeps
    // `bind_tag = 0`, so the locals are the same warm, cacheable tries the
    // unbound query uses — and the next batch of the same shape reuses
    // them wholesale.
    let locals = prepare_plan_locals(
        cluster,
        db,
        plan,
        config,
        index,
        &BoundValues::none(),
        &mut report,
        cancel,
        tracer,
    )?;

    // Project each unique binding onto the plan's attribute order. Bound
    // attributes outside the order are ignored, like the single-binding
    // path does (they touch no relation of this plan). Distinct bindings
    // can collapse onto one *driver row* here (e.g. they differed only in
    // an ignored attribute), so the rows deduplicate once more.
    let bound_attrs: Vec<Attr> =
        plan.order.iter().copied().filter(|&a| merged[0].get(a).is_some()).collect();
    let mut keyed: Vec<(Vec<Value>, usize)> = merged
        .iter()
        .enumerate()
        .map(|(j, m)| (bound_attrs.iter().map(|&a| m.get(a).unwrap()).collect(), j))
        .collect();
    keyed.sort();
    let mut driver_rows: Vec<Vec<Value>> = Vec::new();
    let mut row_of_unique = vec![0usize; merged.len()];
    for (row, j) in keyed {
        if driver_rows.last() != Some(&row) {
            driver_rows.push(row);
        }
        row_of_unique[j] = driver_rows.len() - 1;
    }

    let budget = config.max_intermediate_tuples;
    let order = &plan.order;
    let width = order.len();
    let n_slots = driver_rows.len();
    let driver_rows_ref = &driver_rows;
    let bound_attrs_ref = &bound_attrs;
    let computation_span = tracer.span(COORDINATOR_LANE, "computation");
    let run = cluster.run_traced(
        tracer,
        "batch_join",
        |w, span| -> Result<(Vec<Result<SlotData>>, JoinCounters, usize)> {
            // At least one fault/cancellation checkpoint per worker, then
            // one per SINK_CHECK_EVERY emitted rows inside the sinks and
            // one per binding in the driver's stop hook.
            adj_faults::inject(FaultSite::JoinEnumerate, cancel);
            cancel.check().map_err(cancel_err)?;
            let tries: Vec<Arc<Trie>> = locals[w].iter().map(|l| Arc::clone(&l.trie)).collect();
            let driver = BatchedLeapfrog::new(order, tries, bound_attrs_ref)?;
            let mut scratch = JoinScratch::new();
            let mut stop = || cancel.check().is_err();
            let (slots, counters, completed) = match mode {
                OutputMode::Rows | OutputMode::Limit(_) => {
                    let mut sinks: Vec<CancelSink<'_, RowBuffer>> = (0..n_slots)
                        .map(|_| {
                            let mut inner = RowBuffer::new(width).with_budget(budget);
                            if let OutputMode::Limit(n) = mode {
                                inner = inner.with_limit(n);
                            }
                            CancelSink::new(inner, cancel)
                        })
                        .collect();
                    let mut refs: Vec<&mut dyn RowSink> =
                        sinks.iter_mut().map(|s| s as &mut dyn RowSink).collect();
                    let outcome =
                        driver.run_batch(driver_rows_ref, &mut refs, &mut scratch, &mut stop);
                    let slots: Vec<Result<SlotData>> = sinks
                        .into_iter()
                        .take(outcome.completed)
                        .map(|s| {
                            let inner = s.into_inner();
                            if inner.over_budget() {
                                Err(Error::BudgetExceeded {
                                    what: "join output tuples",
                                    limit: budget,
                                })
                            } else {
                                Ok(SlotData::Rows(inner.into_flat()))
                            }
                        })
                        .collect();
                    (slots, outcome.counters, outcome.completed)
                }
                OutputMode::Count => {
                    let mut sinks: Vec<CancelSink<'_, CountSink>> =
                        (0..n_slots).map(|_| CancelSink::new(CountSink::new(), cancel)).collect();
                    let mut refs: Vec<&mut dyn RowSink> =
                        sinks.iter_mut().map(|s| s as &mut dyn RowSink).collect();
                    let outcome =
                        driver.run_batch(driver_rows_ref, &mut refs, &mut scratch, &mut stop);
                    let slots: Vec<Result<SlotData>> = sinks
                        .into_iter()
                        .take(outcome.completed)
                        .map(|s| Ok(SlotData::Count(s.into_inner().count())))
                        .collect();
                    (slots, outcome.counters, outcome.completed)
                }
                OutputMode::Exists => {
                    let mut sinks: Vec<CancelSink<'_, ExistsSink>> =
                        (0..n_slots).map(|_| CancelSink::new(ExistsSink::new(), cancel)).collect();
                    let mut refs: Vec<&mut dyn RowSink> =
                        sinks.iter_mut().map(|s| s as &mut dyn RowSink).collect();
                    let outcome =
                        driver.run_batch(driver_rows_ref, &mut refs, &mut scratch, &mut stop);
                    let slots: Vec<Result<SlotData>> = sinks
                        .into_iter()
                        .take(outcome.completed)
                        .map(|s| Ok(SlotData::Exists(s.into_inner().found())))
                        .collect();
                    (slots, outcome.counters, outcome.completed)
                }
            };
            if span.is_recording() {
                span.arg("bindings_completed", completed as u64);
                span.arg("output_tuples", counters.output_tuples);
                span.arg("seeks", counters.stats.total_seeks());
            }
            Ok((slots, counters, completed))
        },
    );
    report.computation_secs = run.makespan_secs;
    drop(computation_span);

    // Gather: merge counters, accumulate per-slot payloads, and take the
    // *minimum* completion watermark across workers — a binding's result is
    // complete only when every worker enumerated its partition of it.
    let mut gather_span = tracer.span(COORDINATOR_LANE, "gather");
    let mut counters = JoinCounters::new(width);
    let mut completed_global = n_slots;
    let mut accs: Vec<SlotAcc> = (0..n_slots).map(|_| SlotAcc::default()).collect();
    for r in run.results {
        // Outer layer: panic isolation; inner layer: the worker's own
        // typed result. Either one fails the whole batch — a lost worker
        // means every binding's partition is incomplete.
        let (slots, c, completed) = r.map_err(Error::from)??;
        counters.merge(&c);
        completed_global = completed_global.min(completed);
        for (acc, slot) in accs.iter_mut().zip(slots) {
            match slot {
                Ok(SlotData::Rows(rows)) => acc.rows.extend_from_slice(&rows),
                Ok(SlotData::Count(n)) => acc.count += n,
                Ok(SlotData::Exists(e)) => acc.exists |= e,
                Err(e) => {
                    acc.err.get_or_insert(e);
                }
            }
        }
    }
    if gather_span.is_recording() {
        gather_span.arg("bindings", batch.len() as u64);
        gather_span.arg("unique_bindings", n_slots as u64);
        gather_span.arg("bindings_completed", completed_global as u64);
        gather_span.arg("output_tuples", counters.output_tuples);
    }
    drop(gather_span);
    report.output_tuples = counters.output_tuples;
    report.counters = counters;

    // A slot past the watermark was cancelled mid-batch; surface the
    // token's own verdict (deadline vs explicit cancel) on each.
    let cancel_error = cancel
        .check()
        .err()
        .map(cancel_err)
        .unwrap_or(Error::Cancelled { deadline_exceeded: false });
    let mut slot_outputs: Vec<Result<QueryOutput>> = Vec::with_capacity(n_slots);
    for (i, acc) in accs.into_iter().enumerate() {
        if i >= completed_global {
            slot_outputs.push(Err(cancel_error.clone()));
            continue;
        }
        if let Some(e) = acc.err {
            slot_outputs.push(Err(e));
            continue;
        }
        let out = match mode {
            OutputMode::Rows => QueryOutput::Rows(Relation::from_flat(schema.clone(), acc.rows)?),
            OutputMode::Limit(n) => {
                // Same canonical-sample shaping as the single-binding
                // path: each worker shipped its n smallest local rows, so
                // normalizing and truncating keeps the n globally-smallest.
                let gathered = Relation::from_flat(schema.clone(), acc.rows)?;
                let keep = n.min(gathered.len());
                let flat = gathered.flat()[..keep * width].to_vec();
                QueryOutput::Rows(Relation::from_flat(schema.clone(), flat)?)
            }
            OutputMode::Count => QueryOutput::Count(acc.count),
            OutputMode::Exists => QueryOutput::Exists(acc.exists),
        };
        slot_outputs.push(Ok(out));
    }

    // Demultiplex driver slots back onto submissions: submission → unique
    // binding → driver row.
    let outputs: Vec<Result<QueryOutput>> =
        batch.slot_of().iter().map(|&u| slot_outputs[row_of_unique[u]].clone()).collect();

    report.other_secs = (t_exec.elapsed().as_secs_f64()
        - report.precompute_secs
        - report.communication_secs
        - report.computation_secs)
        .max(0.0);
    Ok((outputs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adj_core::{execute_plan_bound, optimize, Adj, Strategy};
    use adj_query::parse_query;
    use adj_relational::Attr;

    fn graph(n: u32, m: u32) -> Relation {
        let edges: Vec<(Value, Value)> = (0..n)
            .flat_map(|i| vec![(i % m, (i * 7 + 1) % m), ((i * 3) % m, (i * 11 + 5) % m)])
            .collect();
        Relation::from_pairs(Attr(0), Attr(1), &edges)
    }

    /// Triangle with parameterized apex: `$v` binds attribute 0.
    fn setup() -> (Adj, adj_relational::Database, QueryPlan) {
        let (q, _) = parse_query("R1($v, b), R2(b, c), R3(c, $v)").unwrap();
        let db = q.instantiate(&graph(300, 37));
        let adj = Adj::with_workers(4);
        let plan = optimize(&q, &db, adj.config(), Strategy::CoOptimize).unwrap();
        (adj, db, plan)
    }

    fn param_attr(plan: &QueryPlan) -> Attr {
        plan.query.param_attrs()[0].1
    }

    #[test]
    fn batch_matches_looped_bound_execution() {
        let (adj, db, plan) = setup();
        let attr = param_attr(&plan);
        let values: Vec<Value> = (0..37).map(|i| (i * 13 + 5) % 37).collect();
        let batch = BindingBatch::new(
            values.iter().map(|&v| BoundValues::new(vec![(attr, v)]).unwrap()).collect(),
        )
        .unwrap();
        for mode in [OutputMode::Rows, OutputMode::Count, OutputMode::Exists, OutputMode::Limit(3)]
        {
            let (outs, _) = execute_plan_batch(
                adj.cluster(),
                &db,
                &plan,
                adj.config(),
                mode,
                None,
                &batch,
                &CancelToken::none(),
                &Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(outs.len(), values.len());
            for (&v, out) in values.iter().zip(&outs) {
                let bound = BoundValues::new(vec![(attr, v)]).unwrap();
                let (expect, _) =
                    execute_plan_bound(adj.cluster(), &db, &plan, adj.config(), mode, None, &bound)
                        .unwrap();
                assert_eq!(
                    out.as_ref().unwrap(),
                    &expect,
                    "binding {v} under {mode:?} must match the single-binding path"
                );
            }
        }
    }

    #[test]
    fn duplicate_submissions_share_one_execution() {
        let (adj, db, plan) = setup();
        let attr = param_attr(&plan);
        let bv = |v| BoundValues::new(vec![(attr, v)]).unwrap();
        let batch = BindingBatch::new(vec![bv(5), bv(9), bv(5), bv(5)]).unwrap();
        assert_eq!(batch.unique_len(), 2);
        let (outs, _) = execute_plan_batch(
            adj.cluster(),
            &db,
            &plan,
            adj.config(),
            OutputMode::Count,
            None,
            &batch,
            &CancelToken::none(),
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(outs.len(), 4);
        assert_eq!(outs[0].as_ref().unwrap(), outs[2].as_ref().unwrap());
        assert_eq!(outs[0].as_ref().unwrap(), outs[3].as_ref().unwrap());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (adj, db, plan) = setup();
        let batch = BindingBatch::new(Vec::new()).unwrap();
        let (outs, report) = execute_plan_batch(
            adj.cluster(),
            &db,
            &plan,
            adj.config(),
            OutputMode::Rows,
            None,
            &batch,
            &CancelToken::none(),
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(outs.is_empty());
        assert_eq!(report.comm_tuples, 0);
    }

    #[test]
    fn unbound_param_fails_the_whole_batch() {
        let (adj, db, plan) = setup();
        let batch = BindingBatch::new(vec![BoundValues::none()]).unwrap();
        let err = execute_plan_batch(
            adj.cluster(),
            &db,
            &plan,
            adj.config(),
            OutputMode::Count,
            None,
            &batch,
            &CancelToken::none(),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::UnboundParam { .. }));
    }

    #[test]
    fn pre_fired_cancel_yields_per_binding_errors() {
        let (adj, db, plan) = setup();
        let attr = param_attr(&plan);
        let batch =
            BindingBatch::new((0..8).map(|v| BoundValues::new(vec![(attr, v)]).unwrap()).collect())
                .unwrap();
        let cancel = CancelToken::manual();
        cancel.cancel();
        let result = execute_plan_batch(
            adj.cluster(),
            &db,
            &plan,
            adj.config(),
            OutputMode::Count,
            None,
            &batch,
            &cancel,
            &Tracer::disabled(),
        );
        // The token can fire the batch-level shuffle (whole-batch error) —
        // but if execution reaches the join, every binding must carry a
        // typed per-binding cancellation.
        match result {
            Err(e) => assert!(matches!(e, Error::Cancelled { .. })),
            Ok((outs, _)) => {
                assert!(outs.iter().all(|o| matches!(o, Err(Error::Cancelled { .. }))));
            }
        }
    }
}
