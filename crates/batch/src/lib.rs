//! # adj-batch — batched multi-query execution
//!
//! Serving traffic against a prepared query is many *bindings* of one
//! *shape*: the plan, the attribute order, and — crucially — the shuffled
//! trie indexes are identical across bindings; only the bound constants
//! differ. The single-binding hot path already amortizes planning (plan
//! cache) and indexes (index cache), but still pays per binding for
//! admission, shuffle consultation, worker dispatch, and a from-the-root
//! cursor descent per bound level.
//!
//! This crate amortizes those per-binding costs across a whole
//! [`BindingBatch`]:
//!
//! * the plan's bags and final shuffle run **once**, *unbound* — so every
//!   relation keeps its cacheable identity (`bind_tag = 0`) and the whole
//!   batch shares one set of warm tries;
//! * each worker drives a [`adj_leapfrog::BatchedLeapfrog`] over its local
//!   tries: bindings are visited in sorted order and bound-prefix cursors
//!   *gallop forward* from the previous binding's position instead of
//!   re-descending from the trie root;
//! * results demultiplex per binding through the existing
//!   [`adj_relational::RowSink`] / [`adj_relational::OutputMode`] contract,
//!   byte-identical to executing each binding alone.
//!
//! [`execute_plan_batch`] is the executor; `adj-service` wraps it with one
//! admission slot, one deadline, and one trace span tree per batch.

pub mod binding;
pub mod exec;

pub use binding::BindingBatch;
pub use exec::execute_plan_batch;
