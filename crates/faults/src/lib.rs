//! # adj-faults — cooperative cancellation and deterministic fault injection
//!
//! Two small, dependency-free building blocks the execution stack shares:
//!
//! * [`CancelToken`] — a cooperative cancellation flag with an optional
//!   deadline. The executor threads a token through the HCube routing
//!   loops and the Leapfrog row sinks and polls it every few thousand
//!   rows; [`CancelToken::none`] is a one-branch no-op for callers that
//!   never cancel, so the single-query library path pays nothing.
//! * [`FaultPlan`] / [`inject`] — a deterministic, optionally seeded fault
//!   plan that injects panics, delays, or cancellations at named
//!   [`FaultSite`]s inside the pipeline. Disabled (the default), every
//!   [`inject`] call is one relaxed atomic load; tests [`install`] a plan,
//!   run the workload, and drop the [`InstalledFaults`] guard to disarm.
//!
//! Injected panics unwind via [`std::panic::resume_unwind`] with a
//! `String` payload — they skip the global panic hook (no stderr noise in
//! chaos tests) and carry a recognizable message for the worker-failure
//! report to surface.

use std::panic;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why a [`CancelToken::check`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// `true` when the token's deadline elapsed; `false` for an explicit
    /// [`CancelToken::cancel`] (caller-driven or fault-injected).
    pub deadline: bool,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.deadline {
            write!(f, "deadline exceeded")
        } else {
            write!(f, "cancelled")
        }
    }
}

impl std::error::Error for Cancelled {}

/// Token state: live → cancelled (explicitly) or expired (deadline).
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const EXPIRED: u8 = 2;

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    deadline: Option<Instant>,
}

/// A cooperative cancellation token: an atomic flag plus an optional
/// deadline, shared by cloning. [`CancelToken::none`] carries no state at
/// all — checking it is a single branch — so the token can be threaded
/// unconditionally through the execution stack.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The inert token: never cancels, never expires, checks in one branch.
    pub const fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A token with no deadline, cancellable via [`CancelToken::cancel`].
    pub fn manual() -> Self {
        CancelToken { inner: Some(Arc::new(Inner { state: AtomicU8::new(LIVE), deadline: None })) }
    }

    /// A token that expires at `deadline` (and stays cancellable).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner { state: AtomicU8::new(LIVE), deadline: Some(deadline) })),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Whether this token can ever report cancellation (i.e. it is not
    /// [`CancelToken::none`]).
    pub fn is_cancellable(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests cancellation. No-op on [`CancelToken::none`] and after the
    /// deadline already expired (the first cause wins).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            let _ =
                inner.state.compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Polls the token: `Ok(())` while live, [`Cancelled`] once cancelled
    /// or past the deadline. The first failure cause is sticky — a token
    /// that expired keeps reporting `deadline: true` even if `cancel` is
    /// called later, and vice versa.
    pub fn check(&self) -> Result<(), Cancelled> {
        let Some(inner) = &self.inner else { return Ok(()) };
        match inner.state.load(Ordering::Relaxed) {
            LIVE => {}
            CANCELLED => return Err(Cancelled { deadline: false }),
            _ => return Err(Cancelled { deadline: true }),
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                let _ = inner.state.compare_exchange(
                    LIVE,
                    EXPIRED,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                // Re-read: a racing `cancel` may have won; its cause sticks.
                return match inner.state.load(Ordering::Relaxed) {
                    CANCELLED => Err(Cancelled { deadline: false }),
                    _ => Err(Cancelled { deadline: true }),
                };
            }
        }
        Ok(())
    }
}

/// Named places inside the pipeline where a [`FaultPlan`] can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The HCube shuffle's per-row routing loop (coordinator thread).
    ShuffleRoute,
    /// A worker's per-partition trie sort + build.
    TrieBuild,
    /// A worker's Leapfrog enumeration sink.
    JoinEnumerate,
    /// The heavy section of a mutation batch (overlay apply + cache patch).
    MutationApply,
    /// The coordinator's per-batch transport send (encode + delivery).
    TransportSend,
    /// A worker's per-batch transport receive (decode + append).
    TransportRecv,
}

/// All sites, for seeded plans and exhaustive test matrices.
pub const ALL_SITES: [FaultSite; 6] = [
    FaultSite::ShuffleRoute,
    FaultSite::TrieBuild,
    FaultSite::JoinEnumerate,
    FaultSite::MutationApply,
    FaultSite::TransportSend,
    FaultSite::TransportRecv,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::ShuffleRoute => 0,
            FaultSite::TrieBuild => 1,
            FaultSite::JoinEnumerate => 2,
            FaultSite::MutationApply => 3,
            FaultSite::TransportSend => 4,
            FaultSite::TransportRecv => 5,
        }
    }
}

/// What an armed fault does when its site is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Unwind with a recognizable `String` payload (skips the panic hook).
    Panic,
    /// Sleep, simulating a straggling worker or a stalled coordinator.
    Delay(Duration),
    /// Cancel the token threaded through the site.
    Cancel,
}

#[derive(Debug, Clone, Copy)]
struct FaultArm {
    site: FaultSite,
    /// Fire on the `nth` (0-based) hit of `site` after installation.
    nth: u64,
    action: FaultAction,
    fired: bool,
}

/// A deterministic fault plan: a set of (site, nth-hit, action) arms. Each
/// arm fires exactly once; hits are counted per site from the moment the
/// plan is [`install`]ed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    arms: Vec<FaultArm>,
}

impl FaultPlan {
    /// An empty plan (installs the counters but fires nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arm: perform `action` on the `nth` (0-based) hit of `site`.
    pub fn on(mut self, site: FaultSite, nth: u64, action: FaultAction) -> Self {
        self.arms.push(FaultArm { site, nth, action, fired: false });
        self
    }

    /// Panic on the `nth` hit of `site`.
    pub fn panic_at(self, site: FaultSite, nth: u64) -> Self {
        self.on(site, nth, FaultAction::Panic)
    }

    /// Cancel the site's token on the `nth` hit of `site`.
    pub fn cancel_at(self, site: FaultSite, nth: u64) -> Self {
        self.on(site, nth, FaultAction::Cancel)
    }

    /// Sleep `delay` on the `nth` hit of `site`.
    pub fn delay_at(self, site: FaultSite, nth: u64, delay: Duration) -> Self {
        self.on(site, nth, FaultAction::Delay(delay))
    }

    /// A deterministic pseudo-random plan: `arms` faults drawn from `seed`
    /// over all sites, with panic/cancel actions and small nth offsets.
    /// Identical seeds produce identical plans — the chaos matrix reruns
    /// under a second seed in CI to widen coverage without flaking.
    pub fn seeded(seed: u64, arms: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..arms {
            let site = ALL_SITES[(rng.next() % ALL_SITES.len() as u64) as usize];
            let nth = rng.next() % 3;
            let action = match rng.next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Cancel,
                _ => FaultAction::Delay(Duration::from_micros(rng.next() % 500)),
            };
            plan = plan.on(site, nth, action);
        }
        plan
    }
}

/// A tiny deterministic PRNG (SplitMix64) so seeded plans need no
/// dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[derive(Debug)]
struct ActivePlan {
    arms: Vec<FaultArm>,
    hits: [u64; ALL_SITES.len()],
}

/// Fast gate: a single relaxed load on the hot path while no plan is
/// installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<ActivePlan>> = Mutex::new(None);
/// Serializes tests that install fault plans: the injector is global, so
/// two concurrent installations would see each other's faults.
static TEST_GATE: Mutex<()> = Mutex::new(());

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    // A panicking injection site can poison these locks by design; the
    // guarded state is always consistent (counter bumps + flag flips).
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Guard returned by [`install`]: the plan stays armed until it drops.
/// Holds a global test gate so concurrent installers serialize.
#[derive(Debug)]
pub struct InstalledFaults {
    _gate: MutexGuard<'static, ()>,
}

impl InstalledFaults {
    /// Per-site hit counts since installation (for assertions on reach).
    pub fn hits(&self, site: FaultSite) -> u64 {
        recover(ACTIVE.lock()).as_ref().map_or(0, |a| a.hits[site.index()])
    }

    /// Whether every arm of the installed plan has fired.
    pub fn all_fired(&self) -> bool {
        recover(ACTIVE.lock()).as_ref().is_some_and(|a| a.arms.iter().all(|arm| arm.fired))
    }
}

impl Drop for InstalledFaults {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *recover(ACTIVE.lock()) = None;
    }
}

/// Arms `plan` globally and returns the disarming guard. Tests holding the
/// guard are serialized process-wide (the injector is a global).
#[must_use = "faults disarm when the guard drops"]
pub fn install(plan: FaultPlan) -> InstalledFaults {
    let gate = recover(TEST_GATE.lock());
    *recover(ACTIVE.lock()) = Some(ActivePlan { arms: plan.arms, hits: [0; ALL_SITES.len()] });
    ENABLED.store(true, Ordering::SeqCst);
    InstalledFaults { _gate: gate }
}

/// The injection point the pipeline calls at each named site. Disabled
/// (no installed plan) this is one relaxed atomic load. Armed, it counts
/// the hit and performs at most one matching action: panicking via
/// [`panic::resume_unwind`] (hook-free, `String` payload), sleeping, or
/// cancelling `token`.
#[inline]
pub fn inject(site: FaultSite, token: &CancelToken) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    inject_armed(site, token);
}

#[cold]
fn inject_armed(site: FaultSite, token: &CancelToken) {
    let action = {
        let mut guard = recover(ACTIVE.lock());
        let Some(active) = guard.as_mut() else { return };
        let hit = active.hits[site.index()];
        active.hits[site.index()] += 1;
        let arm =
            active.arms.iter_mut().find(|arm| !arm.fired && arm.site == site && arm.nth == hit);
        match arm {
            Some(arm) => {
                arm.fired = true;
                Some(arm.action)
            }
            None => None,
        }
    };
    // The lock is released before acting: a panic here must not poison the
    // injector, and a delay must not serialize unrelated sites.
    match action {
        None => {}
        Some(FaultAction::Panic) => {
            panic::resume_unwind(Box::new(format!("injected fault: panic at {site:?}")))
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Cancel) => token.cancel(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancellable());
        t.cancel();
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn manual_cancel_is_sticky_and_shared() {
        let t = CancelToken::manual();
        assert_eq!(t.check(), Ok(()));
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.check(), Err(Cancelled { deadline: false }));
        assert_eq!(t.check(), Err(Cancelled { deadline: false }));
    }

    #[test]
    fn deadline_expiry_reports_deadline_cause() {
        let t = CancelToken::with_timeout(Duration::from_millis(5));
        assert_eq!(t.check(), Ok(()));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(t.check(), Err(Cancelled { deadline: true }));
        // The cause is sticky even after an explicit cancel.
        t.cancel();
        assert_eq!(t.check(), Err(Cancelled { deadline: true }));
    }

    #[test]
    fn explicit_cancel_beats_a_later_deadline() {
        let t = CancelToken::with_timeout(Duration::from_millis(5));
        t.cancel();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(t.check(), Err(Cancelled { deadline: false }));
    }

    #[test]
    fn inject_is_inert_without_a_plan() {
        // No install: nothing fires, nothing counts.
        inject(FaultSite::ShuffleRoute, &CancelToken::none());
    }

    #[test]
    fn armed_panic_fires_once_on_the_nth_hit() {
        let faults = install(FaultPlan::new().panic_at(FaultSite::TrieBuild, 2));
        let token = CancelToken::none();
        inject(FaultSite::TrieBuild, &token);
        inject(FaultSite::TrieBuild, &token);
        let caught = std::panic::catch_unwind(|| inject(FaultSite::TrieBuild, &token));
        let payload = caught.expect_err("third hit must panic");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("TrieBuild"), "{message}");
        // Fired arms stay quiet afterwards.
        inject(FaultSite::TrieBuild, &token);
        assert_eq!(faults.hits(FaultSite::TrieBuild), 4);
        assert!(faults.all_fired());
    }

    #[test]
    fn cancel_action_cancels_the_site_token() {
        let _faults = install(FaultPlan::new().cancel_at(FaultSite::JoinEnumerate, 0));
        let token = CancelToken::manual();
        inject(FaultSite::JoinEnumerate, &token);
        assert_eq!(token.check(), Err(Cancelled { deadline: false }));
    }

    #[test]
    fn dropping_the_guard_disarms() {
        {
            let _faults = install(FaultPlan::new().panic_at(FaultSite::MutationApply, 0));
        }
        inject(FaultSite::MutationApply, &CancelToken::none()); // must not panic
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(0xF00D, 6);
        let b = FaultPlan::seeded(0xF00D, 6);
        let c = FaultPlan::seeded(0xBEEF, 6);
        let key =
            |p: &FaultPlan| p.arms.iter().map(|a| (a.site, a.nth, a.action)).collect::<Vec<_>>();
        assert_eq!(key(&a), key(&b));
        assert_ne!(key(&a), key(&c), "different seeds should differ (these do)");
        assert_eq!(a.arms.len(), 6);
    }
}
