//! # adj-trace — per-query span timelines for the ADJ pipeline
//!
//! A query's `ExecutionReport` says *how much* time each phase took; it
//! cannot say *which* shuffle round, *which* worker, or *which* trie level
//! burned it. This crate is the missing attribution layer: a per-query
//! [`Tracer`] hands out RAII [`SpanGuard`]s that record named, timestamped
//! intervals (plus zero-duration instant events) into a bounded lock-free
//! buffer. When the query finishes, [`Tracer::finish`] yields an immutable
//! [`Trace`] that renders to Chrome/Perfetto `chrome://tracing` JSON, feeds
//! `EXPLAIN ANALYZE`, or sits in the service's slow-query log.
//!
//! ## Design constraints
//!
//! * **True no-op when disabled.** [`Tracer::disabled`] carries no
//!   allocation and no atomics; every recording call is a single
//!   `Option::is_none` branch. The serving hot path pays nothing when
//!   tracing is off.
//! * **Lock-free when enabled.** Events land in a fixed-capacity slot
//!   array. Writers claim a slot with one `fetch_add` on the head counter;
//!   a claimed index past the capacity is counted in
//!   [`Trace::events_dropped`] instead of blocking or reallocating, so a
//!   pathological query can never wedge a worker on its own telemetry.
//!   Slot indices are claimed exactly once and never reused, so the
//!   per-slot `ready` flag (Release store by the writer, Acquire load by
//!   the reader) is the only synchronization the buffer needs.
//! * **Lanes, not thread ids.** Every event names a [`Lane`]: lane 0 is
//!   the coordinator (service + single-threaded executor phases), lane
//!   `w + 1` is cluster worker `w`. Straggler skew is then directly
//!   visible as one long bar in one worker lane.
//! * **Cheap to record, pay to read.** Timestamps are raw TSC ticks on
//!   x86-64 (converted to microseconds at drain time against the trace's
//!   own anchor pair, so no up-front calibration); annotations store inline
//!   without allocating; retired buffers recycle through a per-thread
//!   pool; and [`QueryTrace`] defers draining and sorting until someone
//!   actually reads the timeline. A traced-but-never-inspected query pays
//!   tens of nanoseconds per event, full stop.
//!
//! ## Example
//!
//! ```
//! use adj_trace::Tracer;
//!
//! let tracer = Tracer::new(128);
//! {
//!     let mut span = tracer.span(0, "shuffle");
//!     span.arg("tuples", 42);
//! } // recorded on drop
//! tracer.instant(1, "cache_hit", "R1");
//! let trace = tracer.finish();
//! assert_eq!(trace.events.len(), 2);
//! assert_eq!(trace.events_dropped, 0);
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"shuffle\""));
//! ```

use std::borrow::Cow;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Timeline lane an event belongs to: `0` is the coordinator, `w + 1` is
/// cluster worker `w`. See [`lane_for_worker`].
pub type Lane = u32;

/// The coordinator/service lane (lane 0).
pub const COORDINATOR_LANE: Lane = 0;

/// The lane for cluster worker `w` (workers start at lane 1).
pub fn lane_for_worker(worker: usize) -> Lane {
    worker as Lane + 1
}

/// Well-known span/instant names of the transport-backed shuffle timeline,
/// so dashboards and tests don't scatter string literals:
///
/// * [`SPAN_SHUFFLE`] (coordinator lane) — the whole cached shuffle, with
///   `tuples` / `bytes` / `wire_bytes` / `messages` / reuse args;
/// * [`SPAN_ROUTE`] (coordinator lane) — the filter-route-send pass, with a
///   `frames` arg counting transport frames (batches + relation markers);
/// * [`SPAN_BUILD`] (worker lanes) — one per worker, covering its receive +
///   per-relation trie builds, with `inbox_tuples` and `batches` args.
pub const SPAN_SHUFFLE: &str = "shuffle";
/// See [`SPAN_SHUFFLE`].
pub const SPAN_ROUTE: &str = "route";
/// See [`SPAN_SHUFFLE`].
pub const SPAN_BUILD: &str = "build";

/// One numeric key/value annotation on an event.
pub type Arg = (Cow<'static, str>, u64);

/// Annotations stored inline in [`Args`] before spilling to the heap.
const INLINE_ARGS: usize = 8;

/// Numeric key/value annotations on an [`Event`] (tuple counts, cache
/// hits, per-level seek counters, …). The first eight pairs are
/// stored inline — with static keys (the common case) recording a span
/// with its annotations performs **zero** heap allocations; only
/// pathological events spill to a `Vec`.
#[derive(Clone, Default)]
pub struct Args {
    len: u8,
    inline: [Arg; INLINE_ARGS],
    spill: Vec<Arg>,
}

impl Args {
    fn new() -> Args {
        Args { len: 0, inline: std::array::from_fn(|_| (Cow::Borrowed(""), 0)), spill: Vec::new() }
    }

    fn push(&mut self, key: Cow<'static, str>, value: u64) {
        if (self.len as usize) < INLINE_ARGS {
            self.inline[self.len as usize] = (key, value);
            self.len += 1;
        } else {
            self.spill.push((key, value));
        }
    }

    /// Number of annotations.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// Whether the event carries no annotations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The annotations, in the order they were attached.
    pub fn iter(&self) -> impl Iterator<Item = &Arg> {
        self.inline[..self.len as usize].iter().chain(self.spill.iter())
    }

    /// The value of the annotation with the given key, if present.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Args {
    type Item = &'a Arg;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, Arg>, std::slice::Iter<'a, Arg>>;
    fn into_iter(self) -> Self::IntoIter {
        self.inline[..self.len as usize].iter().chain(self.spill.iter())
    }
}

impl std::fmt::Debug for Args {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for Args {
    fn eq(&self, other: &Args) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl PartialEq<Vec<Arg>> for Args {
    fn eq(&self, other: &Vec<Arg>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// One recorded event: a closed interval (`dur_us > 0` possible) or an
/// instant marker (`dur_us == 0`), with free-form numeric arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Static name of the span or instant ("shuffle", "join", …).
    pub name: &'static str,
    /// Free-form detail string (bag label, relation name, …); empty when
    /// the name alone identifies the event.
    pub detail: String,
    /// Timeline lane (0 = coordinator, `w + 1` = worker `w`).
    pub lane: Lane,
    /// Microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in microseconds; 0 for instant events (and for spans that
    /// closed within the same microsecond — see [`Event::span`]).
    pub dur_us: u64,
    /// True for interval events recorded by a [`SpanGuard`]; false for
    /// [`Tracer::instant`] markers.
    pub span: bool,
    /// Numeric key/value annotations. Keys are almost always static
    /// strings and the first few pairs are stored inline, so the hot path
    /// records them without allocating.
    pub args: Args,
}

/// The event buffer: write-once slots claimed by a `fetch_add` on `head`
/// that never wraps below capacity, so every slot has a single writer.
/// Slot storage is *uninitialized* until its writer fills it — creating a
/// tracer costs one flag byte per slot, not one `Event`-sized write — and
/// each `ready` flag publishes its slot's write to readers.
struct Inner {
    start: Instant,
    /// [`raw_ticks`] at creation/reset; event timestamps are recorded as
    /// tick deltas from here and converted to microseconds at drain time.
    start_ticks: u64,
    ready: Box<[AtomicBool]>,
    /// Until [`Inner::drain`] converts them, buffered events hold raw
    /// *tick* deltas in their `start_us`/`dur_us` fields.
    events: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Next slot index to claim; values `>= events.len()` mean the buffer
    /// is full and the event is dropped (and counted).
    head: AtomicUsize,
    dropped: AtomicU64,
}

/// The recording clock, read twice per span. On x86-64 this is `rdtsc`
/// (a handful of ns, several times cheaper than the vDSO `Instant` read);
/// tick deltas are converted to microseconds at drain time against the
/// tracer's own (`Instant`, tick) anchor pair, so no up-front frequency
/// calibration is needed. Modern x86-64 keeps the TSC invariant and
/// synchronized across cores, which is all a microsecond-resolution
/// timeline asks of it. Elsewhere the clock is `Instant` nanoseconds and
/// the drain-time conversion degenerates to a divide by 1000.
#[cfg(target_arch = "x86_64")]
fn raw_ticks() -> u64 {
    // SAFETY: RDTSC has no preconditions; it is a plain counter read.
    unsafe { core::arch::x86_64::_rdtsc() }
}

// SAFETY: each event slot is written by exactly one thread (the unique
// claimant of its index) and only read after an Acquire load observes the
// Release store of `ready = true`, which happens-after the write completes.
unsafe impl Sync for Inner {}

impl Inner {
    fn new(capacity: usize) -> Inner {
        // SAFETY: `UnsafeCell<T>` has the same in-memory representation as
        // `T` (it is `repr(transparent)`), so a boxed slice of
        // `MaybeUninit<Event>` can be reinterpreted as a boxed slice of
        // `UnsafeCell<MaybeUninit<Event>>`. The memory stays uninitialized
        // until a slot's unique writer fills it.
        let events = unsafe {
            let uninit: Box<[MaybeUninit<Event>]> = Box::new_uninit_slice(capacity);
            Box::from_raw(Box::into_raw(uninit) as *mut [UnsafeCell<MaybeUninit<Event>>])
        };
        Inner {
            start: Instant::now(),
            #[cfg(target_arch = "x86_64")]
            start_ticks: raw_ticks(),
            #[cfg(not(target_arch = "x86_64"))]
            start_ticks: 0,
            ready: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            events,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.events.len()
    }

    /// Ticks elapsed since the tracer started; see [`raw_ticks`].
    fn rel_ticks(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            raw_ticks().saturating_sub(self.start_ticks)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.start.elapsed().as_nanos() as u64
        }
    }

    fn record(&self, event: Event) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        if idx < self.events.len() {
            // SAFETY: `idx` was claimed by exactly this call; nobody else
            // writes this slot, and readers wait for `ready`.
            unsafe { (*self.events[idx].get()).write(event) };
            self.ready[idx].store(true, Ordering::Release);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain(&self) -> (Vec<Event>, u64) {
        // Only slots up to the claimed head can hold events; the scan is
        // O(events recorded), not O(capacity). Swapping `ready` to false
        // claims each slot exactly once, so events move out instead of
        // being cloned (and a second drain returns nothing).
        let claimed = self.head.load(Ordering::Relaxed).min(self.events.len());
        // Tick→µs conversion factor, self-calibrated against how many
        // ticks and wall nanoseconds this trace has now spanned. The two
        // "now" reads race each other by a few ns at worst, which is far
        // below the microsecond resolution of the timeline.
        let elapsed_ticks = self.rel_ticks().max(1) as f64;
        let elapsed_ns = (self.start.elapsed().as_nanos().max(1)) as f64;
        let us_per_tick = elapsed_ns / elapsed_ticks / 1000.0;
        let to_us = |ticks: u64| (ticks as f64 * us_per_tick) as u64;
        let mut events = Vec::with_capacity(claimed);
        for idx in 0..claimed {
            if self.ready[idx].swap(false, Ordering::Acquire) {
                // SAFETY: the Acquire swap observed the writer's Release
                // store, so the slot is initialized and the writer is done
                // with it; the swap won the slot, so moving out is unique.
                let mut e = unsafe { (*self.events[idx].get()).assume_init_read() };
                // Convert *endpoints*, not the duration: truncating start
                // and duration independently could shrink a parent span's
                // end below a child's, breaking nesting. A monotone map of
                // both endpoints keeps child intervals inside parents.
                let end_us = to_us(e.start_us.saturating_add(e.dur_us));
                e.start_us = to_us(e.start_us);
                e.dur_us = end_us - e.start_us;
                events.push(e);
            }
        }
        events.sort_by_key(|e| (e.start_us, e.lane));
        (events, self.dropped.load(Ordering::Relaxed))
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.clear();
    }
}

impl Inner {
    /// Drops every initialized slot and rewinds the buffer to empty, ready
    /// to record again. Requires `&mut` — no writer or reader is live.
    fn clear(&mut self) {
        // Only slots whose writer published `ready` were ever initialized.
        let claimed = (*self.head.get_mut()).min(self.events.len());
        for idx in 0..claimed {
            if std::mem::take(self.ready[idx].get_mut()) {
                // SAFETY: `ready` marks the slot initialized, and `&mut
                // self` means no writer or reader is live.
                unsafe { (*self.events[idx].get()).assume_init_drop() };
            }
        }
        *self.head.get_mut() = 0;
        *self.dropped.get_mut() = 0;
        self.start = Instant::now();
        #[cfg(target_arch = "x86_64")]
        {
            self.start_ticks = raw_ticks();
        }
    }
}

/// Retired event buffers kept for reuse, per thread. A tracer's slot array
/// is large enough (hundreds of KB at the default capacity) that the
/// allocator services it with `mmap` — allocating and faulting fresh pages
/// for every traced query costs several microseconds, an order of
/// magnitude more than recording a typical query's events. Recycling a
/// handful of warm buffers per serving thread makes tracer creation
/// allocation-free in steady state.
const POOL_PER_THREAD: usize = 2;

thread_local! {
    static BUFFER_POOL: std::cell::RefCell<Vec<Arc<Inner>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Per-query event collector. Cheap to pass by reference through every
/// layer; a disabled tracer ([`Tracer::disabled`]) reduces every call to a
/// single branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("capacity", &inner.capacity())
                .field("recorded", &inner.head.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// An enabled tracer with room for `capacity` events; events past the
    /// capacity are dropped and counted, never block. The buffer comes
    /// from this thread's retired-buffer pool when one of the right
    /// capacity is available, so steady-state tracer creation performs no
    /// allocation (a small per-thread pool of retired buffers).
    pub fn new(capacity: usize) -> Tracer {
        let recycled = BUFFER_POOL.with(|p| {
            let mut p = p.borrow_mut();
            p.iter().position(|i| i.capacity() == capacity).map(|ix| p.swap_remove(ix))
        });
        let inner = match recycled {
            Some(mut arc) => {
                // The pool only holds unshared buffers, so `get_mut`
                // succeeds and `clear` may safely drop leftover events
                // from a tracer that was never finished.
                Arc::get_mut(&mut arc).expect("pooled buffer is unshared").clear();
                arc
            }
            None => Arc::new(Inner::new(capacity)),
        };
        Tracer { inner: Some(inner) }
    }

    /// The no-op tracer: no allocation, no atomics, every recording call
    /// is one branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether events are being recorded. Call sites can skip *preparing*
    /// expensive details (formatting, counter folding) when this is false.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span on `lane`; the interval is recorded when the returned
    /// guard drops. Annotate it with [`SpanGuard::arg`] /
    /// [`SpanGuard::detail`] before then.
    pub fn span(&self, lane: Lane, name: &'static str) -> SpanGuard<'_> {
        match &self.inner {
            Some(inner) => SpanGuard {
                active: Some(SpanActive {
                    inner,
                    name,
                    lane,
                    start_us: inner.rel_ticks(),
                    detail: String::new(),
                    args: Args::new(),
                }),
            },
            None => SpanGuard { active: None },
        }
    }

    /// Record a zero-duration marker event.
    pub fn instant(&self, lane: Lane, name: &'static str, detail: &str) {
        if let Some(inner) = &self.inner {
            let now = inner.rel_ticks();
            inner.record(Event {
                name,
                detail: detail.to_string(),
                lane,
                start_us: now,
                dur_us: 0,
                span: false,
                args: Args::new(),
            });
        }
    }

    /// Events dropped so far because the buffer was full. One atomic load;
    /// does not drain or materialize anything.
    pub fn events_dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Drain everything recorded so far into an immutable [`Trace`].
    /// Events from spans still open are not included (a span records on
    /// guard drop), and a second `finish` call returns an empty timeline —
    /// each event moves out of the buffer exactly once.
    pub fn finish(&self) -> Trace {
        match &self.inner {
            Some(inner) => {
                let (events, events_dropped) = inner.drain();
                Trace { events, events_dropped, capacity: inner.capacity() }
            }
            None => Trace { events: Vec::new(), events_dropped: 0, capacity: 0 },
        }
    }
}

/// A finished query's trace, materialized lazily. Recording has stopped,
/// but the event buffer is only drained (moved out, sorted, and assembled
/// into a [`Trace`]) on first read — dereference or call any [`Trace`]
/// method to materialize. A serving path that traces every query but whose
/// traces are read only on demand (`EXPLAIN ANALYZE`, the slow-query log,
/// a Chrome export) therefore pays recording cost per query, not
/// collection cost: draining and sorting happen on the reader's time, the
/// collector model every low-overhead tracer uses.
///
/// Holding a `QueryTrace` keeps the underlying buffer alive; it returns to
/// the thread-local pool when the last handle drops.
pub struct QueryTrace {
    tracer: Tracer,
    cell: std::sync::OnceLock<Trace>,
}

impl QueryTrace {
    /// Wrap a tracer whose query is complete. Cheap: bumps the buffer's
    /// refcount, drains nothing.
    pub fn new(tracer: &Tracer) -> QueryTrace {
        QueryTrace { tracer: tracer.clone(), cell: std::sync::OnceLock::new() }
    }

    /// A handle around an already-materialized timeline.
    pub fn from_trace(trace: Trace) -> QueryTrace {
        let cell = std::sync::OnceLock::new();
        let _ = cell.set(trace);
        QueryTrace { tracer: Tracer::disabled(), cell }
    }

    /// Materialize (if not yet read) and clone the timeline, e.g. to store
    /// in a slow-query log that outlives the query outcome.
    pub fn snapshot(&self) -> Trace {
        (**self).clone()
    }
}

impl std::ops::Deref for QueryTrace {
    type Target = Trace;
    fn deref(&self) -> &Trace {
        self.cell.get_or_init(|| self.tracer.finish())
    }
}

impl Clone for QueryTrace {
    fn clone(&self) -> QueryTrace {
        // The buffer can only be drained once, so the clone carries its own
        // materialized copy rather than a second handle to the same slots.
        QueryTrace::from_trace(self.snapshot())
    }
}

impl std::fmt::Debug for QueryTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for QueryTrace {
    fn eq(&self, other: &QueryTrace) -> bool {
        **self == **other
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        // Return the buffer to this thread's pool when this was the last
        // handle — the next traced query on this thread then skips the
        // large slot-array allocation entirely.
        if let Some(arc) = self.inner.take() {
            if Arc::strong_count(&arc) == 1 {
                BUFFER_POOL.with(|p| {
                    let mut p = p.borrow_mut();
                    if p.len() < POOL_PER_THREAD {
                        p.push(arc);
                    }
                });
            }
        }
    }
}

struct SpanActive<'a> {
    inner: &'a Arc<Inner>,
    name: &'static str,
    lane: Lane,
    start_us: u64,
    detail: String,
    args: Args,
}

/// RAII guard for an open span; records the interval when dropped. From a
/// disabled tracer the guard is inert and every method is a no-op branch.
pub struct SpanGuard<'a> {
    active: Option<SpanActive<'a>>,
}

impl SpanGuard<'_> {
    /// Attach a numeric annotation (tuple count, cache hits, …). Static
    /// keys — the common case — record without allocating.
    pub fn arg(&mut self, key: impl Into<Cow<'static, str>>, value: u64) {
        if let Some(a) = &mut self.active {
            a.args.push(key.into(), value);
        }
    }

    /// Set the free-form detail string (bag label, relation name, …).
    pub fn detail(&mut self, detail: impl Into<String>) {
        if let Some(a) = &mut self.active {
            a.detail = detail.into();
        }
    }

    /// Whether this guard actually records (i.e. came from an enabled
    /// tracer). Lets call sites skip computing expensive annotations.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Drop the span without recording it. For spans that exist to catch a
    /// *possible* stall (admission waits, lock waits): when the stall never
    /// happened, discarding keeps the timeline free of zero-width noise —
    /// the event's *absence* is the signal that the query never waited.
    pub fn discard(&mut self) {
        self.active = None;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end = a.inner.rel_ticks();
            a.inner.record(Event {
                name: a.name,
                detail: a.detail,
                lane: a.lane,
                start_us: a.start_us,
                dur_us: end.saturating_sub(a.start_us),
                span: true,
                args: a.args,
            });
        }
    }
}

/// An immutable, finished span timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// All recorded events, sorted by `(start_us, lane)`.
    pub events: Vec<Event>,
    /// Events that arrived after the buffer filled up; they were discarded
    /// rather than blocking the query. A non-zero value means the timeline
    /// is truncated and the buffer capacity should be raised.
    pub events_dropped: u64,
    /// The buffer capacity the tracer ran with.
    pub capacity: usize,
}

impl Trace {
    /// Events with the given name, in timeline order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// The set of distinct lanes that recorded at least one event, sorted.
    pub fn lanes(&self) -> Vec<Lane> {
        let mut lanes: Vec<Lane> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes
    }

    /// Sum of a numeric annotation over all events carrying it.
    pub fn sum_arg(&self, key: &str) -> u64 {
        self.events
            .iter()
            .flat_map(|e| e.args.iter())
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .sum()
    }

    /// Whether every span nests properly inside its enclosing span on the
    /// same lane: for any two overlapping intervals on a lane, one must
    /// contain the other. Scoped [`SpanGuard`]s guarantee this; the check
    /// is what tests assert to call a trace a well-formed span *tree*.
    pub fn is_well_formed(&self) -> bool {
        let lanes = self.lanes();
        for lane in lanes {
            let spans: Vec<&Event> =
                self.events.iter().filter(|e| e.lane == lane && e.span).collect();
            for (i, a) in spans.iter().enumerate() {
                for b in spans.iter().skip(i + 1) {
                    let (a0, a1) = (a.start_us, a.start_us + a.dur_us);
                    let (b0, b1) = (b.start_us, b.start_us + b.dur_us);
                    let overlap = a0 < b1 && b0 < a1;
                    let a_in_b = b0 <= a0 && a1 <= b1;
                    let b_in_a = a0 <= b0 && b1 <= a1;
                    if overlap && !a_in_b && !b_in_a {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Render the timeline in Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto "JSON array" format): one complete
    /// event (`"ph":"X"`) per span, an instant event (`"ph":"i"`) per
    /// marker, plus `thread_name` metadata naming each lane.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for lane in self.lanes() {
            let name = if lane == COORDINATOR_LANE {
                "coordinator".to_string()
            } else {
                format!("worker {}", lane - 1)
            };
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{lane},\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&name)
                ),
                &mut out,
                &mut first,
            );
        }
        for e in &self.events {
            let mut args = String::from("{");
            let mut afirst = true;
            if !e.detail.is_empty() {
                args.push_str(&format!("\"detail\":{}", json_string(&e.detail)));
                afirst = false;
            }
            for (k, v) in &e.args {
                if !afirst {
                    args.push(',');
                }
                afirst = false;
                args.push_str(&format!("{}:{}", json_string(k), v));
            }
            args.push('}');
            let ph = if e.span { "X" } else { "i" };
            let dur = if e.span { format!(",\"dur\":{}", e.dur_us) } else { String::new() };
            let scope = if e.span { "" } else { ",\"s\":\"t\"" };
            push(
                format!(
                    "{{\"ph\":\"{ph}\",\"name\":{},\"pid\":1,\"tid\":{},\"ts\":{}{dur}{scope},\
                     \"args\":{args}}}",
                    json_string(e.name),
                    e.lane,
                    e.start_us
                ),
                &mut out,
                &mut first,
            );
        }
        out.push_str("\n]");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        {
            let mut s = t.span(0, "phase");
            s.arg("tuples", 7);
            assert!(!s.is_recording());
        }
        t.instant(3, "marker", "detail");
        let trace = t.finish();
        assert!(trace.events.is_empty());
        assert_eq!(trace.events_dropped, 0);
        assert_eq!(trace.capacity, 0);
        assert!(trace.is_well_formed());
    }

    #[test]
    fn spans_record_on_drop_with_args_and_detail() {
        let t = Tracer::new(16);
        {
            let mut s = t.span(0, "outer");
            s.detail("bag0");
            s.arg("tuples", 42);
            let _inner = t.span(0, "inner");
        }
        let trace = t.finish();
        assert_eq!(trace.events.len(), 2);
        let outer = trace.events_named("outer");
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].detail, "bag0");
        assert_eq!(outer[0].args, vec![(Cow::Borrowed("tuples"), 42)]);
        // inner dropped first, so it closed before (or when) outer did
        let inner = trace.events_named("inner")[0];
        assert!(inner.start_us >= outer[0].start_us);
        assert!(inner.start_us + inner.dur_us <= outer[0].start_us + outer[0].dur_us);
        assert!(trace.is_well_formed());
    }

    #[test]
    fn discarded_spans_record_nothing() {
        let t = Tracer::new(16);
        {
            let mut s = t.span(0, "maybe_wait");
            s.arg("n", 1);
            s.discard();
        }
        {
            let _kept = t.span(0, "kept");
        }
        let trace = t.finish();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "kept");
    }

    #[test]
    fn pooled_buffers_reset_between_tracers() {
        // Same thread, same capacity: the second tracer reuses the first's
        // buffer — including when the first was never finished, whose
        // leftover events must not leak into the new timeline.
        let t = Tracer::new(32);
        t.instant(0, "left_behind", "");
        t.instant(0, "left_behind", "");
        drop(t);
        let t = Tracer::new(32);
        t.instant(0, "fresh", "");
        let trace = t.finish();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "fresh");
        assert_eq!(trace.events_dropped, 0);
    }

    #[test]
    fn query_trace_materializes_lazily_and_clones_deep() {
        let t = Tracer::new(16);
        t.instant(0, "e", "");
        let qt = QueryTrace::new(&t);
        drop(t); // the handle keeps the buffer alive
        let clone = qt.clone(); // materializes, then copies
        assert_eq!(qt.events.len(), 1);
        assert_eq!(clone.events.len(), 1);
        assert_eq!(qt.snapshot().events.len(), 1); // repeat reads see the same timeline
        assert_eq!(qt, clone);
    }

    #[test]
    fn buffer_wrap_sets_events_dropped() {
        let t = Tracer::new(4);
        for i in 0..10 {
            t.instant(0, "e", &format!("{i}"));
        }
        let trace = t.finish();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.events_dropped, 6);
        assert_eq!(trace.capacity, 4);
    }

    #[test]
    fn concurrent_writers_all_land_or_are_counted() {
        let t = Tracer::new(64);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let t = &t;
                scope.spawn(move || {
                    for _ in 0..16 {
                        let mut s = t.span(lane_for_worker(w), "work");
                        s.arg("w", w as u64);
                    }
                });
            }
        });
        let trace = t.finish();
        assert_eq!(trace.events.len() as u64 + trace.events_dropped, 8 * 16);
        assert_eq!(trace.events.len(), 64);
        assert_eq!(trace.events_dropped, 64);
    }

    #[test]
    fn lanes_and_sums() {
        let t = Tracer::new(16);
        t.instant(0, "a", "");
        {
            let mut s = t.span(2, "b");
            s.arg("n", 3);
        }
        {
            let mut s = t.span(1, "b");
            s.arg("n", 4);
        }
        let trace = t.finish();
        assert_eq!(trace.lanes(), vec![0, 1, 2]);
        assert_eq!(trace.sum_arg("n"), 7);
    }

    #[test]
    fn chrome_json_shape() {
        let t = Tracer::new(16);
        {
            let mut s = t.span(0, "phase \"x\"");
            s.arg("tuples", 5);
        }
        t.instant(1, "hit", "R1");
        let json = t.finish().to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"worker 0\""));
        assert!(json.contains("\"tuples\":5"));
    }

    #[test]
    fn well_formedness_detects_partial_overlap() {
        let mk = |s, d| Event {
            name: "e",
            detail: String::new(),
            lane: 0,
            start_us: s,
            dur_us: d,
            span: true,
            args: Args::new(),
        };
        let nested = Trace { events: vec![mk(0, 10), mk(2, 3)], events_dropped: 0, capacity: 16 };
        assert!(nested.is_well_formed());
        let crossed = Trace { events: vec![mk(0, 10), mk(5, 10)], events_dropped: 0, capacity: 16 };
        assert!(!crossed.is_well_formed());
    }
}
