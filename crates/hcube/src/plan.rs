//! HCube coordinate arithmetic and tuple routing.
//!
//! Routing works on per-attribute *coordinates*: a tuple's coordinate on a
//! dimension is its hash `h_A(v) ∈ [p_A]` in the plain case, a content-hash
//! spread coordinate for a heavy hitter routed by the dimension's spreader
//! relation, or the broadcast marker [`BROADCAST`] (`⋆`) when the tuple
//! must be replicated across the dimension (non-spreader heavy hitters, and
//! every dimension of an attribute the relation lacks).

use crate::skew::{spread_coord, HotDecision, ShuffleRouting};
use adj_cluster::WorkerId;
use adj_relational::hash::hash_value;
use adj_relational::{Schema, Value};

/// The coordinate marker for "replicate across this dimension" (`⋆`).
pub const BROADCAST: u32 = u32::MAX;

/// A concrete HCube plan: the share vector plus worker assignment.
///
/// Hypercube coordinates live in `[p_0] × … × [p_{n-1}]`; the linear cube
/// index uses mixed-radix encoding in attribute-id order. Cubes are assigned
/// to workers round-robin (`cube % N*`) — "each machine can be assigned one
/// or more hypercubes" (Sec. II-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HCubePlan {
    share: Vec<u32>,
    num_workers: usize,
}

impl HCubePlan {
    /// Creates a plan from a share vector (indexed by attribute id).
    pub fn new(share: Vec<u32>, num_workers: usize) -> Self {
        assert!(num_workers > 0);
        assert!(share.iter().all(|&p| p >= 1));
        HCubePlan { share, num_workers }
    }

    /// The share vector `p`.
    pub fn share(&self) -> &[u32] {
        &self.share
    }

    /// Number of workers `N*`.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Total number of hypercubes `P = Π p_A`.
    pub fn num_cubes(&self) -> usize {
        self.share.iter().map(|&x| x as usize).product()
    }

    /// Worker owning a cube (round-robin).
    #[inline]
    pub fn cube_to_worker(&self, cube: usize) -> WorkerId {
        cube % self.num_workers
    }

    /// Per-attribute hash `h_A(v) ∈ [p_A]`.
    #[inline]
    pub fn hash_dim(&self, attr_id: u32, v: Value) -> u32 {
        let p = self.share[attr_id as usize];
        if p == 1 {
            0
        } else {
            (hash_value(attr_id, v as u64) % p as u64) as u32
        }
    }

    /// Duplication factor of a relation under this plan.
    pub fn dup_factor(&self, schema: &Schema) -> u64 {
        crate::share::dup_factor(&self.share, schema.mask())
    }

    /// Per-attribute coordinates of one tuple of shuffle atom `ai` under a
    /// heavy-hitter routing table, aligned with the relation's own schema:
    /// the plain hash for cold values, the content-hash spread coordinate
    /// when this relation is the dimension's spreader, [`BROADCAST`] when
    /// another relation spreads the dimension. With an inactive table this
    /// is exactly the per-attribute hash vector. Returns whether any
    /// dimension took a hot route (the shuffle's `hot_routed_tuples` tally).
    pub fn tuple_coords(
        &self,
        schema: &Schema,
        row: &[Value],
        ai: usize,
        routing: &ShuffleRouting,
        coords: &mut Vec<u32>,
    ) -> bool {
        coords.clear();
        let mut hot = false;
        for (i, &a) in schema.attrs().iter().enumerate() {
            let coord = match routing.decision(ai, a, row[i]) {
                None => self.hash_dim(a.0, row[i]),
                Some(HotDecision::Spread) => {
                    hot = true;
                    spread_coord(a, row, self.share[a.index()])
                }
                Some(HotDecision::Broadcast) => {
                    hot = true;
                    BROADCAST
                }
            };
            coords.push(coord);
        }
        hot
    }

    /// Block id of a tuple: mixed-radix code of the hash values of the
    /// relation's *own* attributes. Tuples sharing a block id go to exactly
    /// the same set of hypercubes — the grouping unit of the Pull/Merge
    /// implementations (Sec. V, Example 4).
    pub fn block_id(&self, schema: &Schema, row: &[Value]) -> u64 {
        let coords: Vec<u32> =
            schema.attrs().iter().enumerate().map(|(i, &a)| self.hash_dim(a.0, row[i])).collect();
        self.encode_block(schema, &coords)
    }

    /// Encodes a per-attribute coordinate vector (entries in `[p_A]`, or
    /// [`BROADCAST`]) into a block id. The radix is `p_A + 1` per dimension
    /// so the broadcast marker round-trips.
    pub fn encode_block(&self, schema: &Schema, coords: &[u32]) -> u64 {
        let mut id = 0u64;
        for (i, &a) in schema.attrs().iter().enumerate() {
            let p = self.share[a.index()] as u64;
            let digit = if coords[i] == BROADCAST { p } else { coords[i] as u64 };
            id = id * (p + 1) + digit;
        }
        id
    }

    /// Number of distinct blocks a relation can have (broadcast marker
    /// included: radix `p_A + 1` per dimension).
    pub fn num_blocks(&self, schema: &Schema) -> u64 {
        schema.attrs().iter().map(|a| self.share[a.index()] as u64 + 1).product()
    }

    /// Visits every cube whose coordinate matches `fixed` (entries of
    /// `u32::MAX` are free `⋆` dimensions).
    fn for_each_matching_cube(&self, fixed: &[u32], mut visit: impl FnMut(usize)) {
        let n = self.share.len();
        let mut coord: Vec<u32> =
            fixed.iter().map(|&f| if f == u32::MAX { 0 } else { f }).collect();
        loop {
            let mut idx = 0usize;
            for (&share_d, &coord_d) in self.share.iter().zip(&coord) {
                idx = idx * share_d as usize + coord_d as usize;
            }
            visit(idx);
            // Advance the odometer over free dims, last dim fastest.
            let mut d = n;
            loop {
                if d == 0 {
                    return; // wrapped every free dim: enumeration complete
                }
                d -= 1;
                if fixed[d] != u32::MAX {
                    continue;
                }
                coord[d] += 1;
                if coord[d] < self.share[d] {
                    break;
                }
                coord[d] = 0;
            }
        }
    }

    /// Destination *cubes* of a tuple: all coordinates matching the tuple's
    /// hash values on the relation's attributes, any value elsewhere (the
    /// `⋆` dimensions of the paper's Example 2).
    pub fn route_cubes(&self, schema: &Schema, row: &[Value], cubes: &mut Vec<usize>) {
        cubes.clear();
        let n = self.share.len();
        let mut fixed = vec![u32::MAX; n];
        for (i, &a) in schema.attrs().iter().enumerate() {
            fixed[a.index()] = self.hash_dim(a.0, row[i]);
        }
        self.for_each_matching_cube(&fixed, |idx| cubes.push(idx));
    }

    /// Destination *workers* of a tuple (deduplicated).
    pub fn route_workers(&self, schema: &Schema, row: &[Value], dests: &mut Vec<WorkerId>) {
        let mut cubes = Vec::new();
        self.route_cubes(schema, row, &mut cubes);
        dests.clear();
        dests.extend(cubes.iter().map(|&c| self.cube_to_worker(c)));
        dests.sort_unstable();
        dests.dedup();
    }

    /// Workers that need the block with the given per-attribute coordinates
    /// (deduplicated): same as routing any representative tuple of the
    /// block. [`BROADCAST`] entries are free dimensions, exactly like the
    /// attributes the relation lacks.
    pub fn block_workers(&self, schema: &Schema, block_coords: &[u32]) -> Vec<WorkerId> {
        let n = self.share.len();
        let mut fixed = vec![u32::MAX; n];
        for (i, &a) in schema.attrs().iter().enumerate() {
            fixed[a.index()] = block_coords[i];
        }
        let mut out = Vec::new();
        self.for_each_matching_cube(&fixed, |idx| out.push(self.cube_to_worker(idx)));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Decomposes a block id back into per-attribute coordinates, inverse of
    /// [`HCubePlan::encode_block`] (and of [`HCubePlan::block_id`] for
    /// broadcast-free blocks).
    pub fn block_hashes(&self, schema: &Schema, mut block_id: u64) -> Vec<u32> {
        let mut out = vec![0u32; schema.arity()];
        for (i, &a) in schema.attrs().iter().enumerate().rev() {
            let p = self.share[a.index()] as u64;
            let digit = block_id % (p + 1);
            out[i] = if digit == p { BROADCAST } else { digit as u32 };
            block_id /= p + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_ids(ids)
    }

    #[test]
    fn route_covers_free_dims() {
        // p = (1,2,2,1,1) as in the paper's Example 2: 4 cubes.
        let plan = HCubePlan::new(vec![1, 2, 2, 1, 1], 4);
        assert_eq!(plan.num_cubes(), 4);
        // A tuple of R2(a,d) fixes dims a,d (both share 1) and is free on
        // b,c → all 4 cubes.
        let mut cubes = Vec::new();
        plan.route_cubes(&schema(&[0, 3]), &[1, 1], &mut cubes);
        assert_eq!(cubes.len(), 4);
        let mut sorted = cubes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn route_fixed_tuple_hits_one_cube() {
        let plan = HCubePlan::new(vec![2, 2], 4);
        let mut cubes = Vec::new();
        plan.route_cubes(&schema(&[0, 1]), &[7, 9], &mut cubes);
        assert_eq!(cubes.len(), 1);
    }

    #[test]
    fn dup_factor_matches_route_count() {
        let plan = HCubePlan::new(vec![2, 3, 2], 12);
        let s = schema(&[0, 2]); // free dim: attr 1 with share 3
        assert_eq!(plan.dup_factor(&s), 3);
        let mut cubes = Vec::new();
        plan.route_cubes(&s, &[5, 6], &mut cubes);
        assert_eq!(cubes.len(), 3);
    }

    #[test]
    fn workers_dedup_when_cubes_share_worker() {
        // 4 cubes on 2 workers round-robin: a unary tuple free on attr 1
        // routes to 2 cubes that may share a worker — dests are deduped and
        // never exceed the worker count.
        let plan = HCubePlan::new(vec![2, 2], 2);
        let mut dests = Vec::new();
        plan.route_workers(&schema(&[0]), &[1], &mut dests);
        assert!(!dests.is_empty() && dests.len() <= 2);
        let mut sorted = dests.clone();
        sorted.dedup();
        assert_eq!(sorted, dests);
    }

    #[test]
    fn block_id_roundtrip() {
        let plan = HCubePlan::new(vec![2, 3, 4], 6);
        let s = schema(&[0, 2]);
        for row in [[0u32, 0], [1, 7], [13, 22], [5, 5]] {
            let id = plan.block_id(&s, &row);
            assert!(id < plan.num_blocks(&s));
            let hashes = plan.block_hashes(&s, id);
            assert_eq!(hashes[0], plan.hash_dim(0, row[0]));
            assert_eq!(hashes[1], plan.hash_dim(2, row[1]));
        }
    }

    #[test]
    fn block_workers_match_tuple_routing() {
        let plan = HCubePlan::new(vec![2, 2, 2], 8);
        let s = schema(&[0, 1]);
        let row = [3u32, 8];
        let mut dests = Vec::new();
        plan.route_workers(&s, &row, &mut dests);
        let hashes = vec![plan.hash_dim(0, row[0]), plan.hash_dim(1, row[1])];
        let bw = plan.block_workers(&s, &hashes);
        assert_eq!(dests, bw);
    }

    #[test]
    fn same_block_same_destinations() {
        let plan = HCubePlan::new(vec![2, 2], 4);
        let s = schema(&[0, 1]);
        let mut seen: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        for u in 0..20u32 {
            for v in 0..20u32 {
                let mut d = Vec::new();
                plan.route_workers(&s, &[u, v], &mut d);
                let b = plan.block_id(&s, &[u, v]);
                if let Some(prev) = seen.get(&b) {
                    assert_eq!(prev, &d);
                } else {
                    seen.insert(b, d);
                }
            }
        }
        assert_eq!(seen.len(), 4);
    }
}
