//! Warm-cache patching: route only the delta through a cached entry.
//!
//! When a relation mutates, its cached [`RelationIndex`] entries are not
//! discarded — the delta batch is tiny compared to the base, and the base's
//! shuffled placement is fully determined by the entry's own
//! [`IndexKey`]: the share vector is indexed by attribute id, the induced
//! order fixes the trie layout, and `route_tag == 0` entries used plain hash
//! routing. So each entry can be brought forward *in place*: permute the
//! insert/tombstone runs into the entry's induced order, route them with the
//! same coordinate arithmetic the original shuffle used, and per worker
//! merge the (sorted) delta into the fragment's re-emitted sorted run —
//! a linear merge + linear trie rebuild, no global sort, no communication
//! round. The result is republished under the relation's new delta
//! sequence, so the very next query hits warm.
//!
//! Entries that are *not* reconstructible from their key are dropped
//! instead: skew-routed fragments (`route_tag != 0` — the spreader
//! assignment depended on the full shuffle's atom list) and bound fragments
//! (`bind_tag != 0` — never published in practice), plus entries from an
//! older stats epoch. Entries more than one sequence behind are also
//! dropped: only the current batch's delta is in hand, so an entry that
//! missed an earlier batch (a query serving an old snapshot can publish
//! its index after later mutations ran) cannot be brought forward — only
//! `delta_seq == new_seq - 1` entries are patchable.

use crate::cache::{IndexKey, IndexScope, RelationIndex};
use crate::plan::HCubePlan;
use adj_relational::{Relation, Schema, Trie, Value};
use std::sync::Arc;

/// What [`patch_relation_indexes`] did to one relation's cached entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchOutcome {
    /// Entries brought forward to the new delta sequence.
    pub patched: usize,
    /// Entries discarded because their fragments are not reconstructible
    /// from the key alone (skew-routed, bound, or stale-epoch entries) or
    /// because they lag the current sequence by more than one batch.
    pub dropped: usize,
    /// Delta tuple copies (inserts and tombstones) delivered across all
    /// patched entries — the total routing work this patch pass did.
    pub tuples_routed: u64,
}

/// Takes every cached index entry of `relation` (in `scope`'s database),
/// routes the delta runs into the reconstructible ones, and republishes
/// them under the relation's current delta sequence in `scope.versions`.
///
/// `inserts` and `deletes` carry the *batch* delta in the relation's own
/// schema; rows in `deletes` absent from a fragment are ignored (tombstone
/// of a missing row), rows in `inserts` already present are absorbed.
pub fn patch_relation_indexes(
    scope: &IndexScope<'_>,
    relation: &str,
    inserts: &Relation,
    deletes: &Relation,
) -> PatchOutcome {
    let mut out = PatchOutcome::default();
    let new_seq = scope.delta_seq_for(relation);
    for (key, entry) in scope.cache.take_indexes_for(scope.db_tag, relation) {
        if key.route_tag != 0 || key.bind_tag != 0 || key.epoch != scope.epoch {
            out.dropped += 1;
            continue;
        }
        if key.delta_seq == new_seq {
            // Already current (idempotent re-patch); keep it untouched.
            scope.cache.insert_index(key, entry);
            continue;
        }
        if new_seq == 0 || key.delta_seq != new_seq - 1 {
            // The entry skipped at least one batch (e.g. a query over an
            // old snapshot published it after later mutations ran). Only
            // the current batch's delta is in hand, so routing it in
            // would silently lose the intermediate batches — drop.
            out.dropped += 1;
            continue;
        }
        match patch_one(&key, &entry, inserts, deletes, new_seq) {
            Some((new_key, new_entry, routed)) => {
                scope.cache.insert_index(new_key, new_entry);
                out.patched += 1;
                out.tuples_routed += routed;
            }
            None => out.dropped += 1,
        }
    }
    out
}

/// Routes the delta into one entry; `None` when the delta does not fit the
/// entry's induced layout (schema changed under the relation name).
fn patch_one(
    key: &IndexKey,
    entry: &RelationIndex,
    inserts: &Relation,
    deletes: &Relation,
    new_seq: u64,
) -> Option<(IndexKey, Arc<RelationIndex>, u64)> {
    let induced = Schema::new(key.induced.clone()).ok()?;
    let ins_p = inserts.permute(induced.attrs()).ok()?;
    let del_p = deletes.permute(induced.attrs()).ok()?;
    let plan = HCubePlan::new(key.share.clone(), key.num_workers);

    // Plain-hash routing, exactly as the original (route_tag == 0) shuffle:
    // fixed coordinates on the relation's own attributes, broadcast on the
    // rest. Insert and tombstone deliveries are counted apart: both are
    // routing work, but only inserts grow the fragments, so only they feed
    // the entry's tuples/messages shuffle-savings credit.
    let route = |rel: &Relation| -> (Vec<Vec<Value>>, u64) {
        let mut per_worker: Vec<Vec<Value>> = vec![Vec::new(); key.num_workers];
        let mut dests = Vec::new();
        let mut routed: u64 = 0;
        for row in rel.rows() {
            plan.route_workers(&induced, row, &mut dests);
            for &w in &dests {
                per_worker[w].extend_from_slice(row);
                routed += 1;
            }
        }
        (per_worker, routed)
    };
    let (ins_w, ins_routed) = route(&ins_p);
    let (del_w, del_routed) = route(&del_p);

    let mut tries: Vec<Arc<Trie>> = Vec::with_capacity(key.num_workers);
    for (w, old) in entry.tries.iter().enumerate() {
        if ins_w[w].is_empty() && del_w[w].is_empty() {
            tries.push(Arc::clone(old)); // untouched fragment rides along
            continue;
        }
        let ins_rel = Relation::from_flat(induced.clone(), ins_w[w].clone()).ok()?;
        let del_rel = Relation::from_flat(induced.clone(), del_w[w].clone()).ok()?;
        let merged = Relation::merge_sorted(&[&old.to_relation(), &ins_rel])
            .and_then(|u| u.subtract(&del_rel))
            .ok()?;
        tries.push(Arc::new(Trie::build(&merged)));
    }
    let new_key = IndexKey { delta_seq: new_seq, ..key.clone() };
    let new_entry =
        Arc::new(RelationIndex::new(tries, entry.tuples + ins_routed, entry.messages + ins_routed));
    Some((new_key, new_entry, ins_routed + del_routed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::IndexCache;

    fn rel(ids: &[u32], rows: &[&[Value]]) -> Relation {
        Relation::from_rows(Schema::from_ids(ids), rows).unwrap()
    }

    /// Reference: route a full relation the way the plain shuffle does and
    /// build per-worker tries.
    fn fragments(r: &Relation, plan: &HCubePlan) -> Vec<Arc<Trie>> {
        let mut per_worker: Vec<Vec<Value>> = vec![Vec::new(); plan.num_workers()];
        let mut dests = Vec::new();
        for row in r.rows() {
            plan.route_workers(r.schema(), row, &mut dests);
            for &w in &dests {
                per_worker[w].extend_from_slice(row);
            }
        }
        per_worker
            .into_iter()
            .map(|buf| {
                Arc::new(Trie::build(&Relation::from_flat(r.schema().clone(), buf).unwrap()))
            })
            .collect()
    }

    fn key_for(r: &Relation, plan: &HCubePlan, delta_seq: u64) -> IndexKey {
        IndexKey {
            db_tag: 1,
            epoch: 0,
            relation: "R".into(),
            induced: r.schema().attrs().to_vec(),
            share: plan.share().to_vec(),
            num_workers: plan.num_workers(),
            route_tag: 0,
            bind_tag: 0,
            delta_seq,
        }
    }

    #[test]
    fn patched_fragments_match_fresh_shuffle_of_effective_relation() {
        let base =
            rel(&[0, 1], &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6], &[6, 7], &[7, 8], &[8, 9]]);
        let plan = HCubePlan::new(vec![2, 2], 4);
        let cache = IndexCache::new(1 << 20);
        cache.insert_index(
            key_for(&base, &plan, 0),
            Arc::new(RelationIndex::new(fragments(&base, &plan), 8, 8)),
        );

        let inserts = rel(&[0, 1], &[&[9, 1], &[1, 9]]);
        let deletes = rel(&[0, 1], &[&[2, 3], &[42, 42]]); // one real, one missing
        let versions = vec![("R".to_string(), 1u64)];
        let scope = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &versions };
        let out = patch_relation_indexes(&scope, "R", &inserts, &deletes);
        assert_eq!((out.patched, out.dropped), (1, 0));
        assert!(out.tuples_routed >= 4);
        // Both attrs are share dimensions, so every row lands on exactly
        // one worker: 2 insert + 2 delete deliveries were routed, but only
        // the inserts may feed the entry's shuffle-savings credit.
        let patched_stats = cache.get_index(&key_for(&base, &plan, 1)).expect("patched entry");
        assert_eq!(patched_stats.tuples, 8 + 2, "delete routing must not inflate tuples");
        assert_eq!(patched_stats.messages, 8 + 2);

        // old sequence no longer matches; new one does
        assert!(cache.get_index(&key_for(&base, &plan, 0)).is_none());
        let patched = cache.get_index(&key_for(&base, &plan, 1)).expect("patched entry");

        let effective =
            Relation::merge_sorted(&[&base, &inserts]).unwrap().subtract(&deletes).unwrap();
        let expected = fragments(&effective, &plan);
        for (w, (got, want)) in patched.tries.iter().zip(&expected).enumerate() {
            assert_eq!(got.to_relation(), want.to_relation(), "worker {w} fragment diverged");
        }
        assert!(patched.bytes > 0);
    }

    #[test]
    fn skew_routed_and_stale_epoch_entries_drop() {
        let base = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let plan = HCubePlan::new(vec![2, 2], 4);
        let cache = IndexCache::new(1 << 20);
        let mut hot = key_for(&base, &plan, 0);
        hot.route_tag = 0xBEEF;
        cache.insert_index(hot, Arc::new(RelationIndex::new(fragments(&base, &plan), 2, 2)));
        let mut stale = key_for(&base, &plan, 0);
        stale.epoch = 7;
        cache.insert_index(stale, Arc::new(RelationIndex::new(fragments(&base, &plan), 2, 2)));

        let none = Relation::empty(Schema::from_ids(&[0, 1]));
        let ins = rel(&[0, 1], &[&[5, 5]]);
        let versions = vec![("R".to_string(), 1u64)];
        let scope = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &versions };
        let out = patch_relation_indexes(&scope, "R", &ins, &none);
        assert_eq!((out.patched, out.dropped), (0, 2));
        assert!(cache.is_empty(), "unreconstructible entries must not survive");
    }

    #[test]
    fn entries_lagging_more_than_one_batch_drop() {
        let base = rel(&[0, 1], &[&[1, 2], &[2, 3], &[3, 4], &[4, 5]]);
        let plan = HCubePlan::new(vec![2, 2], 4);
        let cache = IndexCache::new(1 << 20);
        // A query serving the seq-0 snapshot published its entry *after*
        // batches 1 and 2 ran (lookup clones the Arc outside the registry
        // lock). Patching it with batch 3's delta alone would silently
        // lose the intermediate batches — it must drop instead.
        cache.insert_index(
            key_for(&base, &plan, 0),
            Arc::new(RelationIndex::new(fragments(&base, &plan), 4, 4)),
        );
        // The entry one behind the new sequence is patchable as usual.
        cache.insert_index(
            key_for(&base, &plan, 2),
            Arc::new(RelationIndex::new(fragments(&base, &plan), 4, 4)),
        );

        let ins = rel(&[0, 1], &[&[9, 9]]);
        let none = Relation::empty(Schema::from_ids(&[0, 1]));
        let versions = vec![("R".to_string(), 3u64)];
        let scope = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &versions };
        let out = patch_relation_indexes(&scope, "R", &ins, &none);
        assert_eq!((out.patched, out.dropped), (1, 1));
        assert!(cache.get_index(&key_for(&base, &plan, 0)).is_none(), "stale entry must drop");

        let patched = cache.get_index(&key_for(&base, &plan, 3)).expect("current entry patched");
        let effective = Relation::merge_sorted(&[&base, &ins]).unwrap();
        for (w, (got, want)) in patched.tries.iter().zip(&fragments(&effective, &plan)).enumerate()
        {
            assert_eq!(got.to_relation(), want.to_relation(), "worker {w} fragment diverged");
        }
    }

    #[test]
    fn untouched_workers_share_the_old_trie() {
        // Share (4,1) on 4 workers: each tuple lands on exactly one worker,
        // so a one-row delta rebuilds exactly one fragment.
        let base = rel(&[0, 1], &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6], &[6, 7]]);
        let plan = HCubePlan::new(vec![4, 1], 4);
        let cache = IndexCache::new(1 << 20);
        let frags = fragments(&base, &plan);
        cache.insert_index(
            key_for(&base, &plan, 0),
            Arc::new(RelationIndex::new(frags.clone(), 6, 6)),
        );
        let ins = rel(&[0, 1], &[&[1, 99]]);
        let none = Relation::empty(Schema::from_ids(&[0, 1]));
        let versions = vec![("R".to_string(), 1u64)];
        let scope = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &versions };
        let out = patch_relation_indexes(&scope, "R", &ins, &none);
        assert_eq!(out.patched, 1);
        let patched = cache.get_index(&key_for(&base, &plan, 1)).unwrap();
        let rebuilt: Vec<bool> =
            patched.tries.iter().zip(&frags).map(|(a, b)| !Arc::ptr_eq(a, b)).collect();
        assert_eq!(rebuilt.iter().filter(|&&r| r).count(), 1, "exactly one fragment rebuilt");
    }
}
