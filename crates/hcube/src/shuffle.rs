//! The three HCube shuffle implementations compared in Fig. 9.
//!
//! * **Push** — the original map/reduce formulation: every tuple copy is an
//!   individual message to each destination worker. Payload is the same as
//!   Pull's, but the per-message overhead is paid once *per delivered tuple
//!   copy*, which is what makes it orders of magnitude slower.
//! * **Pull** — the paper's optimized implementation (Sec. V): tuples are
//!   grouped into *blocks* keyed by their HCube hash signature, and each
//!   worker pulls whole blocks; per-message overhead is paid per block.
//! * **Merge** — Pull plus per-block pre-building: each block is stored
//!   pre-permuted into the Leapfrog attribute order and pre-sorted, so a
//!   worker assembles its local trie by a k-way *merge* of sorted runs
//!   instead of a full sort, and blocks serialize more cheaply (the paper's
//!   "three arrays" observation) — modeled as a 0.5× per-message overhead.
//!
//! All three produce byte-identical local tries; only their costs differ.

use crate::plan::HCubePlan;
use adj_cluster::{Cluster, WorkerId};
use adj_relational::hash::FxHashMap;
use adj_relational::{Attr, Database, Error, Relation, Result, Schema, Trie, Value};
use std::time::Instant;

/// Which shuffle implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HCubeImpl {
    /// Tuple-at-a-time shuffle (the original HCube implementation).
    Push,
    /// Block pull (optimized, Sec. V).
    Pull,
    /// Block pull with pre-built sorted blocks (optimized + trie pre-build).
    Merge,
}

impl HCubeImpl {
    /// All three implementations, for sweeps.
    pub const ALL: [HCubeImpl; 3] = [HCubeImpl::Push, HCubeImpl::Pull, HCubeImpl::Merge];

    /// Display name matching the paper's Fig. 9 legend.
    pub fn name(self) -> &'static str {
        match self {
            HCubeImpl::Push => "Push",
            HCubeImpl::Pull => "Pull",
            HCubeImpl::Merge => "Merge",
        }
    }
}

/// One relation as materialized on a worker after the shuffle: a trie in the
/// query's (induced) attribute order.
#[derive(Debug, Clone)]
pub struct LocalRelation {
    /// The atom / relation name.
    pub name: String,
    /// Local fragment, indexed as a trie.
    pub trie: Trie,
}

/// Cost breakdown of one shuffle.
#[derive(Debug, Clone, Default)]
pub struct ShuffleReport {
    /// Delivered tuple copies (`Σ_R |R|·dup(R,p)` realized).
    pub tuples: u64,
    /// Transfer units (tuple copies for Push; blocks for Pull/Merge).
    pub messages: u64,
    /// Modeled communication seconds (α model + per-message overhead).
    pub comm_secs: f64,
    /// Measured makespan of the local build phase (sort + trie build, or
    /// merge + trie build for Merge).
    pub build_secs: f64,
    /// Measured seconds spent pre-building blocks (Merge only; happens once
    /// per stored relation, before query time).
    pub preprocess_secs: f64,
}

/// The result of a shuffle: per-worker local databases plus the cost report.
#[derive(Debug)]
pub struct ShuffleOutput {
    /// `locals[w]` is worker `w`'s relations, in atom order.
    pub locals: Vec<Vec<LocalRelation>>,
    /// Cost breakdown.
    pub report: ShuffleReport,
}

/// Runs the HCube shuffle for the relations named in `atom_names` (each must
/// exist in `db`), under `plan`, preparing tries in the induced order of
/// `order`.
pub fn hcube_shuffle(
    cluster: &Cluster,
    db: &Database,
    atom_names: &[String],
    plan: &HCubePlan,
    order: &[Attr],
    impl_: HCubeImpl,
) -> Result<ShuffleOutput> {
    let n = cluster.num_workers();
    assert_eq!(n, plan.num_workers(), "plan sized for a different cluster");
    cluster.comm().record_round();

    // Per atom: the induced (permuted) schema and the column permutation.
    struct AtomInfo {
        name: String,
        schema: Schema,   // original
        induced: Schema,  // order-induced
        perm: Vec<usize>, // induced column -> original column
    }
    let mut infos = Vec::with_capacity(atom_names.len());
    for name in atom_names {
        let rel = db.get(name)?;
        let schema = rel.schema().clone();
        let induced_attrs: Vec<Attr> =
            order.iter().copied().filter(|a| schema.contains(*a)).collect();
        if induced_attrs.len() != schema.arity() {
            return Err(Error::SchemaMismatch {
                left: schema.to_string(),
                right: format!("order {order:?}"),
            });
        }
        let perm = induced_attrs.iter().map(|&a| schema.position(a).unwrap()).collect();
        infos.push(AtomInfo {
            name: name.clone(),
            schema,
            induced: Schema::new(induced_attrs)?,
            perm,
        });
    }

    let mut tuples: u64 = 0;
    let mut messages: u64 = 0;
    let t_pre = Instant::now();
    let mut preprocess_secs = 0.0;

    // Per worker, per atom: either raw permuted values (Push/Pull) or a list
    // of pre-built sorted block relations (Merge).
    enum Inbox {
        Raw(Vec<Value>),
        Blocks(Vec<std::sync::Arc<Relation>>),
    }
    let mut inboxes: Vec<Vec<Inbox>> = (0..n)
        .map(|_| {
            infos
                .iter()
                .map(|_| match impl_ {
                    HCubeImpl::Merge => Inbox::Blocks(Vec::new()),
                    _ => Inbox::Raw(Vec::new()),
                })
                .collect()
        })
        .collect();

    for (ai, info) in infos.iter().enumerate() {
        let rel = db.get(&info.name)?;
        match impl_ {
            HCubeImpl::Push => {
                let mut dests: Vec<WorkerId> = Vec::new();
                for row in rel.rows() {
                    plan.route_workers(&info.schema, row, &mut dests);
                    for &w in &dests {
                        if let Inbox::Raw(buf) = &mut inboxes[w][ai] {
                            for &p in &info.perm {
                                buf.push(row[p]);
                            }
                        }
                        tuples += 1;
                        messages += 1; // one message per delivered copy
                    }
                }
            }
            HCubeImpl::Pull | HCubeImpl::Merge => {
                // Group into blocks by hash signature. Blocks are keyed and
                // stored in the *induced* (permuted) layout so that the
                // block-id decode below matches the encode.
                let mut blocks: FxHashMap<u64, Vec<Value>> = FxHashMap::default();
                let mut prow: Vec<Value> = Vec::with_capacity(info.perm.len());
                for row in rel.rows() {
                    prow.clear();
                    prow.extend(info.perm.iter().map(|&p| row[p]));
                    let id = plan.block_id(&info.induced, &prow);
                    blocks.entry(id).or_default().extend_from_slice(&prow);
                }
                let mut block_ids: Vec<u64> = blocks.keys().copied().collect();
                block_ids.sort_unstable(); // determinism
                for id in block_ids {
                    let data = blocks.remove(&id).unwrap();
                    let block_tuples = (data.len() / info.perm.len().max(1)) as u64;
                    // Per-attribute hashes of this block, in ORIGINAL
                    // schema attr positions (block_workers expects them
                    // aligned with schema.attrs()).
                    let induced_hashes = plan.block_hashes(&info.induced, id);
                    let mut orig_hashes = vec![0u32; info.schema.arity()];
                    for (ic, &a) in info.induced.attrs().iter().enumerate() {
                        let oc = info.schema.position(a).unwrap();
                        orig_hashes[oc] = induced_hashes[ic];
                    }
                    let dests = plan.block_workers(&info.schema, &orig_hashes);
                    let prebuilt = if impl_ == HCubeImpl::Merge {
                        // Pre-build once (sorted, induced layout); counted
                        // as preprocessing below.
                        Some(std::sync::Arc::new(
                            Relation::from_flat(info.induced.clone(), data.clone())
                                .expect("arity preserved"),
                        ))
                    } else {
                        None
                    };
                    for &w in &dests {
                        match &mut inboxes[w][ai] {
                            Inbox::Raw(buf) => buf.extend_from_slice(&data),
                            Inbox::Blocks(bs) => bs.push(prebuilt.clone().unwrap()),
                        }
                        tuples += block_tuples;
                        messages += 1; // one message per block delivery
                    }
                }
            }
        }
    }
    if impl_ == HCubeImpl::Merge {
        preprocess_secs = t_pre.elapsed().as_secs_f64();
    }
    cluster
        .comm()
        .record(tuples, tuples * 4 * infos.iter().map(|i| i.perm.len()).max().unwrap_or(1) as u64);
    cluster.comm().record_messages(messages);

    // Memory budget: total bytes parked at each worker.
    if let Some(limit) = cluster.config().memory_limit_bytes {
        for wb in &inboxes {
            let bytes: usize = wb
                .iter()
                .map(|ib| match ib {
                    Inbox::Raw(v) => v.len() * 4,
                    Inbox::Blocks(bs) => bs.iter().map(|b| b.size_bytes()).sum(),
                })
                .sum();
            if bytes > limit {
                return Err(Error::BudgetExceeded { what: "worker memory", limit });
            }
        }
    }

    // Local build phase, in parallel, measured.
    let induced_schemas: Vec<Schema> = infos.iter().map(|i| i.induced.clone()).collect();
    let names: Vec<String> = infos.iter().map(|i| i.name.clone()).collect();
    let inboxes_ref = &inboxes;
    let run = cluster.run(|w| {
        let mut locals = Vec::with_capacity(names.len());
        for (ai, name) in names.iter().enumerate() {
            let trie = match &inboxes_ref[w][ai] {
                Inbox::Raw(buf) => {
                    // sort + dedup + trie build
                    let rel = Relation::from_flat(induced_schemas[ai].clone(), buf.clone())
                        .expect("arity preserved");
                    Trie::build(&rel)
                }
                Inbox::Blocks(bs) => {
                    // k-way merge of pre-sorted blocks + linear trie build
                    if bs.is_empty() {
                        Trie::build(&Relation::empty(induced_schemas[ai].clone()))
                    } else {
                        let refs: Vec<&Relation> = bs.iter().map(|b| b.as_ref()).collect();
                        let rel = Relation::merge_sorted(&refs).expect("same schema");
                        Trie::build(&rel)
                    }
                }
            };
            locals.push(LocalRelation { name: name.clone(), trie });
        }
        locals
    });

    let model = cluster.cost_model();
    let msg_overhead = match impl_ {
        HCubeImpl::Merge => 0.5, // tries serialize/deserialize cheaper
        _ => 1.0,
    };
    let comm_secs =
        model.comm_secs(tuples) + messages as f64 * model.per_message_secs * msg_overhead;

    Ok(ShuffleOutput {
        locals: run.results,
        report: ShuffleReport {
            tuples,
            messages,
            comm_secs,
            build_secs: run.makespan_secs,
            preprocess_secs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adj_cluster::ClusterConfig;
    use adj_relational::Attr;

    /// Triangle test database over a small random-ish graph.
    fn tri_db() -> (Database, Vec<String>) {
        let edges: Vec<(Value, Value)> =
            (0..50u32).flat_map(|i| vec![(i, (i * 7 + 3) % 50), (i, (i * 13 + 1) % 50)]).collect();
        let mut db = Database::new();
        db.insert("R1", Relation::from_pairs(Attr(0), Attr(1), &edges));
        db.insert("R2", Relation::from_pairs(Attr(1), Attr(2), &edges));
        db.insert("R3", Relation::from_pairs(Attr(0), Attr(2), &edges));
        (db, vec!["R1".into(), "R2".into(), "R3".into()])
    }

    fn order3() -> Vec<Attr> {
        vec![Attr(0), Attr(1), Attr(2)]
    }

    #[test]
    fn all_impls_produce_identical_locals() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let outs: Vec<ShuffleOutput> = HCubeImpl::ALL
            .iter()
            .map(|&i| {
                let cluster = Cluster::new(ClusterConfig::with_workers(4));
                hcube_shuffle(&cluster, &db, &names, &plan, &order3(), i).unwrap()
            })
            .collect();
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(
                    outs[0].locals[w][ai].trie, outs[1].locals[w][ai].trie,
                    "push vs pull differ at worker {w} atom {ai}"
                );
                assert_eq!(
                    outs[1].locals[w][ai].trie, outs[2].locals[w][ai].trie,
                    "pull vs merge differ at worker {w} atom {ai}"
                );
            }
        }
    }

    #[test]
    fn impls_identical_under_permuting_order() {
        // Regression: an attribute order that permutes relation columns
        // (c ≺ a ≺ b) must still route blocks to exactly the workers Push
        // routes tuples to.
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 2], 8);
        let order = vec![Attr(2), Attr(0), Attr(1)];
        let outs: Vec<ShuffleOutput> = HCubeImpl::ALL
            .iter()
            .map(|&i| {
                let cluster = Cluster::new(ClusterConfig::with_workers(8));
                hcube_shuffle(&cluster, &db, &names, &plan, &order, i).unwrap()
            })
            .collect();
        for w in 0..8 {
            for ai in 0..names.len() {
                assert_eq!(outs[0].locals[w][ai].trie, outs[1].locals[w][ai].trie);
                assert_eq!(outs[1].locals[w][ai].trie, outs[2].locals[w][ai].trie);
            }
        }
    }

    #[test]
    fn local_union_covers_every_tuple() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        for (ai, name) in names.iter().enumerate() {
            let original = db.get(name).unwrap();
            let mut parts: Vec<Relation> =
                (0..4).map(|w| out.locals[w][ai].trie.to_relation()).collect();
            let mut all = parts.remove(0);
            for p in parts {
                all = all.union(&p).unwrap();
            }
            // permute back to original column order for comparison
            let back = all.permute(original.schema().attrs()).unwrap();
            assert_eq!(&back, original, "{name} lost tuples in shuffle");
        }
    }

    #[test]
    fn push_sends_more_messages_than_pull() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 2], 8);
        let c1 = Cluster::new(ClusterConfig::with_workers(8));
        let push = hcube_shuffle(&c1, &db, &names, &plan, &order3(), HCubeImpl::Push).unwrap();
        let c2 = Cluster::new(ClusterConfig::with_workers(8));
        let pull = hcube_shuffle(&c2, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        assert_eq!(push.report.tuples, pull.report.tuples, "same payload");
        assert!(
            push.report.messages > 10 * pull.report.messages,
            "push {} vs pull {} messages",
            push.report.messages,
            pull.report.messages
        );
        assert!(push.report.comm_secs > pull.report.comm_secs);
    }

    #[test]
    fn tuple_count_matches_dup_model() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Push).unwrap();
        // Each relation R is delivered |R|·dup(R,p) copies when all cubes
        // map to distinct workers (4 cubes on 4 workers here).
        let expect: u64 = names
            .iter()
            .map(|n| {
                let r = db.get(n).unwrap();
                r.len() as u64 * plan.dup_factor(r.schema())
            })
            .sum();
        assert_eq!(out.report.tuples, expect);
    }

    #[test]
    fn memory_budget_fails_shuffle() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![1, 1, 1], 1);
        let mut cfg = ClusterConfig::with_workers(1);
        cfg.memory_limit_bytes = Some(64);
        let cluster = Cluster::new(cfg);
        let err =
            hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }));
    }

    #[test]
    fn merge_reports_preprocess_time() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Merge).unwrap();
        assert!(out.report.preprocess_secs > 0.0);
        let c2 = Cluster::new(ClusterConfig::with_workers(4));
        let pull = hcube_shuffle(&c2, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        assert_eq!(pull.report.preprocess_secs, 0.0);
    }

    #[test]
    fn order_missing_attr_errors() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let bad_order = vec![Attr(0), Attr(1)]; // attr 2 missing
        assert!(hcube_shuffle(&cluster, &db, &names, &plan, &bad_order, HCubeImpl::Pull).is_err());
    }
}
