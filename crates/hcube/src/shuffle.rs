//! The three HCube shuffle implementations compared in Fig. 9.
//!
//! * **Push** — the original map/reduce formulation: every tuple copy is an
//!   individual message to each destination worker. Payload is the same as
//!   Pull's, but the per-message overhead is paid once *per delivered tuple
//!   copy*, which is what makes it orders of magnitude slower.
//! * **Pull** — the paper's optimized implementation (Sec. V): tuples are
//!   grouped into *blocks* keyed by their HCube hash signature, and each
//!   worker pulls whole blocks; per-message overhead is paid per block.
//! * **Merge** — Pull plus per-block pre-building: each block is stored
//!   pre-permuted into the Leapfrog attribute order and pre-sorted, so a
//!   worker assembles its local trie by a k-way *merge* of sorted runs
//!   instead of a full sort, and blocks serialize more cheaply (the paper's
//!   "three arrays" observation) — modeled as a 0.5× per-message overhead.
//!
//! All three produce byte-identical local tries; only their costs differ.
//!
//! On top of the three implementations, [`hcube_shuffle_cached`] consults a
//! cross-query [`IndexCache`](crate::IndexCache): relations whose
//! `(identity, induced order, share, workers, db epoch)` key hits skip the
//! routing, transfer, and build phases entirely and reuse the published
//! per-worker `Arc<Trie>` handles; cold relations are shuffled and built
//! once, then published for every later query.

use crate::cache::{BuildClaim, CacheLookup, IndexKey, IndexScope, RelationIndex};
use crate::plan::HCubePlan;
use crate::skew::{HotValues, ShuffleRouting};
use adj_cluster::{BatchPayload, Cluster, Delivery, RoutedBatch};
use adj_faults::{CancelToken, FaultSite};
use adj_relational::hash::FxHashMap;
use adj_relational::{Attr, BoundValues, Database, Error, Relation, Result, Schema, Trie, Value};
use adj_trace::{Tracer, COORDINATOR_LANE};
use std::sync::Arc;
use std::time::Instant;

/// Which shuffle implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HCubeImpl {
    /// Tuple-at-a-time shuffle (the original HCube implementation).
    Push,
    /// Block pull (optimized, Sec. V).
    Pull,
    /// Block pull with pre-built sorted blocks (optimized + trie pre-build).
    Merge,
}

impl HCubeImpl {
    /// All three implementations, for sweeps.
    pub const ALL: [HCubeImpl; 3] = [HCubeImpl::Push, HCubeImpl::Pull, HCubeImpl::Merge];

    /// Display name matching the paper's Fig. 9 legend.
    pub fn name(self) -> &'static str {
        match self {
            HCubeImpl::Push => "Push",
            HCubeImpl::Pull => "Pull",
            HCubeImpl::Merge => "Merge",
        }
    }
}

/// One relation as materialized on a worker after the shuffle: a trie in the
/// query's (induced) attribute order. The trie is an `Arc` handle — either
/// freshly built for this query or shared with the cross-query index cache.
#[derive(Debug, Clone)]
pub struct LocalRelation {
    /// The atom / relation name.
    pub name: String,
    /// Local fragment, indexed as a trie.
    pub trie: Arc<Trie>,
}

/// Cost breakdown of one shuffle.
#[derive(Debug, Clone, Default)]
pub struct ShuffleReport {
    /// Delivered tuple copies (`Σ_R |R|·dup(R,p)` realized; cache hits move
    /// nothing and contribute nothing here).
    pub tuples: u64,
    /// Delivered tuple copies per worker — the partition-fill vector the
    /// skew stats (max/mean fill) are computed from. Empty on a fully warm
    /// shuffle (nothing moved).
    pub worker_tuples: Vec<u64>,
    /// Tuple copies that took a heavy-hitter route (spread or broadcast)
    /// instead of plain hashing.
    pub hot_routed_tuples: u64,
    /// Transfer units (tuple copies for Push; blocks for Pull/Merge).
    pub messages: u64,
    /// Encoded frame bytes that crossed the wire — real serialized bytes on
    /// the [`TransportKind::Serialized`](adj_cluster::TransportKind)
    /// backend, 0 on the zero-copy in-process backend and on warm shuffles.
    pub wire_bytes: u64,
    /// Modeled communication seconds (α model + per-message overhead).
    pub comm_secs: f64,
    /// Modeled seconds saved by pipelining delivery with trie building
    /// (per-relation completion markers let receivers build relation `i`
    /// while relations `i+1..` are still in flight). 0 when
    /// `pipeline_shuffle` is off or everything was warm. Subtract from
    /// `comm_secs + build_secs` for the pipelined schedule's span.
    pub overlap_secs: f64,
    /// Measured makespan of the local build phase (sort + trie build, or
    /// merge + trie build for Merge) over the *cold* relations; 0 when
    /// every relation was served from the index cache.
    pub build_secs: f64,
    /// Measured seconds spent pre-building blocks (Merge only; happens once
    /// per stored relation, before query time).
    pub preprocess_secs: f64,
    /// Relations whose indexes were built by this shuffle.
    pub built_relations: u64,
    /// Relations served from the index cache (no shuffle, no build).
    pub reused_relations: u64,
    /// Tuple copies that cache hits avoided moving.
    pub tuples_saved: u64,
    /// Tuples scanned in relations carrying a bound-constant filter (the
    /// selection-pushdown denominators; 0 on unbound shuffles).
    pub bound_scanned_tuples: u64,
    /// Tuples that passed their bound-constant filter and were routed —
    /// `bound_kept / bound_scanned` is the realized binding selectivity.
    pub bound_kept_tuples: u64,
}

/// The result of a shuffle: per-worker local databases plus the cost report.
#[derive(Debug)]
pub struct ShuffleOutput {
    /// `locals[w]` is worker `w`'s relations, in atom order.
    pub locals: Vec<Vec<LocalRelation>>,
    /// Cost breakdown.
    pub report: ShuffleReport,
}

/// Runs the HCube shuffle for the relations named in `atom_names` (each must
/// exist in `db`), under `plan`, preparing tries in the induced order of
/// `order`. Never consults an index cache and routes every value by plain
/// hashing — see [`hcube_shuffle_cached`].
pub fn hcube_shuffle(
    cluster: &Cluster,
    db: &Database,
    atom_names: &[String],
    plan: &HCubePlan,
    order: &[Attr],
    impl_: HCubeImpl,
) -> Result<ShuffleOutput> {
    hcube_shuffle_cached(
        cluster,
        db,
        atom_names,
        plan,
        order,
        impl_,
        None,
        &[],
        &[],
        &HotValues::none(),
        &BoundValues::none(),
    )
}

/// Resolves a relation by name against the overlay first, then the base
/// database — so callers can layer per-query temporaries (pre-computed
/// bags) over an immutable shared database without cloning it.
fn resolve<'a>(
    db: &'a Database,
    overlay: &'a [(String, Arc<Relation>)],
    name: &str,
) -> Result<&'a Relation> {
    if let Some((_, rel)) = overlay.iter().find(|(n, _)| n == name) {
        return Ok(rel);
    }
    db.get(name)
}

/// [`hcube_shuffle`] with a cross-query index cache and a heavy-hitter
/// routing table.
///
/// `cache_ids[ai]` is the stable cache identity of `atom_names[ai]` — its
/// name for base relations, a content-describing label for per-query
/// temporaries (pre-computed bags), or `None` to bypass the cache for that
/// relation. When `cache` is `None` (or `cache_ids` is shorter than the
/// atom list) everything runs cold, exactly as [`hcube_shuffle`].
///
/// `overlay` supplies per-query relations (pre-computed bags) resolved
/// before `db`, so the shared database is never cloned per query.
///
/// `hot` lists the heavy-hitter values per attribute. When non-empty *and*
/// the plan maps cubes to workers bijectively (`Π p_A = N*` — the
/// precondition of the spreader-ownership dedup rule, see
/// [`crate::skew`]), hot tuples are spread/broadcast across their dimension
/// instead of hashing onto one coordinate; otherwise the table is ignored
/// and every value hashes plainly. Cache keys fold in each atom's routing
/// role, so skew-routed tries never alias hash-routed ones.
///
/// `bound` carries a prepared query's bound constants. Relations containing
/// a bound attribute are filtered **before routing** — tuples failing an
/// `attr = value` selection never enter an inbox, so the communication
/// volume shrinks with the binding's selectivity. Bound relations also
/// **bypass the index cache in both directions**: their fragments depend on
/// the binding's values, and a serving workload binds unboundedly many
/// distinct values, so caching per-binding artifacts would evict the
/// valuable shared entries for one-shot gains (and a lookup per binding
/// would bury the hit rate in structural misses). The value-bearing
/// [`IndexKey::bind_tag`](crate::cache::IndexKey) guards the discipline:
/// a bound fragment *cannot* alias an unbound entry even if a future path
/// tried to publish one.
#[allow(clippy::too_many_arguments)]
pub fn hcube_shuffle_cached(
    cluster: &Cluster,
    db: &Database,
    atom_names: &[String],
    plan: &HCubePlan,
    order: &[Attr],
    impl_: HCubeImpl,
    cache: Option<&IndexScope<'_>>,
    cache_ids: &[Option<String>],
    overlay: &[(String, Arc<Relation>)],
    hot: &HotValues,
    bound: &BoundValues,
) -> Result<ShuffleOutput> {
    hcube_shuffle_cached_traced(
        cluster,
        db,
        atom_names,
        plan,
        order,
        impl_,
        cache,
        cache_ids,
        overlay,
        hot,
        bound,
        &CancelToken::none(),
        &Tracer::disabled(),
    )
}

/// How often the routing loops poll the [`CancelToken`]: one relaxed atomic
/// load (plus the fault-injection gate) every this many routed rows, so the
/// cancellation latency is bounded without a measurable per-row cost.
const CANCEL_CHECK_EVERY: u64 = 4096;

/// Fault-injection checkpoint + cooperative cancellation poll, mapped onto
/// the workspace error type.
#[inline]
fn checkpoint(site: FaultSite, cancel: &CancelToken) -> Result<()> {
    adj_faults::inject(site, cancel);
    cancel.check().map_err(|c| Error::Cancelled { deadline_exceeded: c.deadline })
}

/// [`hcube_shuffle_cached`] with a cancellation token and a span timeline.
///
/// `cancel` is polled every `CANCEL_CHECK_EVERY` (4096) routed rows and once per
/// atom / build phase; a fired token aborts the shuffle with
/// [`Error::Cancelled`] **before** anything is published to the index cache,
/// so a cancelled query never leaves partial artifacts behind. A panicking
/// build worker is likewise isolated ([`adj_cluster::WorkerFailure`]) and
/// surfaces as [`Error::WorkerPanicked`] with nothing published.
///
/// The span timeline: one `shuffle` span
/// on the coordinator lane (with tuple/message/reuse totals), an
/// `index_cache_hit` / `index_cache_miss` instant per consulted
/// [`IndexKey`], a `route` span over the
/// filter-route-inbox pass, and a `build` span per worker lane over the
/// cold relations' sort + trie builds. With a disabled tracer this is
/// exactly [`hcube_shuffle_cached`].
#[allow(clippy::too_many_arguments)]
pub fn hcube_shuffle_cached_traced(
    cluster: &Cluster,
    db: &Database,
    atom_names: &[String],
    plan: &HCubePlan,
    order: &[Attr],
    impl_: HCubeImpl,
    cache: Option<&IndexScope<'_>>,
    cache_ids: &[Option<String>],
    overlay: &[(String, Arc<Relation>)],
    hot: &HotValues,
    bound: &BoundValues,
    cancel: &CancelToken,
    tracer: &Tracer,
) -> Result<ShuffleOutput> {
    let mut shuffle_span = tracer.span(COORDINATOR_LANE, "shuffle");
    let n = cluster.num_workers();
    assert_eq!(n, plan.num_workers(), "plan sized for a different cluster");

    // Per atom: the induced (permuted) schema and the column permutation.
    // Routing and block grouping run entirely in the induced layout — the
    // original schema only derives the permutation.
    struct AtomInfo {
        name: String,
        induced: Schema,  // order-induced
        perm: Vec<usize>, // induced column -> original column
        /// Bound-constant equality filters over the *induced* columns;
        /// empty when no bound attribute touches this relation.
        filters: Vec<(usize, Value)>,
        /// Value-bearing binding tag ([`BoundValues::tag_for`]); non-zero
        /// iff `filters` is non-empty.
        bind_tag: u64,
    }
    let mut infos = Vec::with_capacity(atom_names.len());
    for name in atom_names {
        let rel = resolve(db, overlay, name)?;
        let schema = rel.schema().clone();
        let induced_attrs: Vec<Attr> =
            order.iter().copied().filter(|a| schema.contains(*a)).collect();
        if induced_attrs.len() != schema.arity() {
            return Err(Error::SchemaMismatch {
                left: schema.to_string(),
                right: format!("order {order:?}"),
            });
        }
        let perm = induced_attrs.iter().map(|&a| schema.position(a).unwrap()).collect();
        let induced = Schema::new(induced_attrs)?;
        let filters = bound.filters_for(&induced);
        let bind_tag = bound.tag_for(&induced);
        debug_assert_eq!(filters.is_empty(), bind_tag == 0);
        infos.push(AtomInfo { name: name.clone(), induced, perm, filters, bind_tag });
    }

    // Bind the heavy-hitter routing table to this shuffle's atom list: the
    // largest relation containing a hot attribute spreads that dimension,
    // everyone else containing it broadcasts. The spreader-ownership dedup
    // rule needs a bijective cube→worker map, so the table stays inert
    // unless `Π p_A = N*`.
    let routing = if hot.is_empty() || plan.num_cubes() != n {
        ShuffleRouting::default()
    } else {
        let atoms: Vec<(u64, usize)> = atom_names
            .iter()
            .map(|name| resolve(db, overlay, name).map(|r| (r.schema().mask(), r.len())))
            .collect::<Result<_>>()?;
        ShuffleRouting::bind(hot, &atoms)
    };

    // Consult the cache: resolved atoms skip routing, transfer, and build.
    // Bound (filtered) atoms never consult it — their fragments are
    // per-binding, see the function docs. Cold atoms come back with a
    // [`BuildClaim`] registering this shuffle as the key's one in-flight
    // builder, so a concurrent query that misses the same key blocks on
    // this build instead of shuffling the relation again (request
    // coalescing); the claims are published at assembly or abandoned by
    // drop on any error path. Claims are acquired in *sorted key order* so
    // two shuffles contending on overlapping atom sets can never
    // hold-and-wait in a cycle.
    let mut resolved: Vec<Option<Arc<RelationIndex>>> = vec![None; infos.len()];
    let mut claims: Vec<Option<BuildClaim<'_>>> = (0..infos.len()).map(|_| None).collect();
    let mut tuples_saved: u64 = 0;
    if let Some(scope) = cache {
        let mut keyed: Vec<(usize, IndexKey)> = infos
            .iter()
            .enumerate()
            .filter(|(_, info)| info.bind_tag == 0)
            .filter_map(|(ai, info)| {
                let Some(Some(id)) = cache_ids.get(ai) else { return None };
                let key = scope.index_key(
                    id.clone(),
                    info.induced.attrs().to_vec(),
                    plan.share(),
                    n,
                    routing.atom_tag(ai),
                    info.bind_tag,
                );
                Some((ai, key))
            })
            .collect();
        keyed.sort_by(|a, b| a.1.cmp(&b.1));
        for i in 0..keyed.len() {
            let (ai, ref key) = keyed[i];
            let id = key.relation.as_str();
            // A self-join can put the same relation under the same induced
            // order twice; waiting on our own claim would deadlock, so the
            // duplicate reuses the first atom's outcome (a cold duplicate
            // builds redundantly and publishes over the equal entry).
            if i > 0 && keyed[i - 1].1 == *key {
                let prev = resolved[keyed[i - 1].0].clone();
                if let Some(entry) = &prev {
                    tuples_saved += entry.tuples;
                }
                resolved[ai] = prev;
                continue;
            }
            match scope.cache.get_index_or_claim(key, cancel) {
                CacheLookup::Hit { value, coalesced } => {
                    let label = if coalesced { "index_cache_coalesced" } else { "index_cache_hit" };
                    tracer.instant(COORDINATOR_LANE, label, id);
                    tuples_saved += value.tuples;
                    resolved[ai] = Some(value);
                }
                CacheLookup::Miss(claim) => {
                    tracer.instant(COORDINATOR_LANE, "index_cache_miss", id);
                    claims[ai] = claim;
                }
            }
        }
    }
    let any_cold = resolved.iter().any(|r| r.is_none());
    let cold: Vec<bool> = resolved.iter().map(|r| r.is_none()).collect();
    let n_atoms = infos.len();

    // What the routing pass produced (the coordinator side of the round).
    struct RouteOutcome {
        tuples: u64,
        messages: u64,
        hot_routed_tuples: u64,
        bound_scanned_tuples: u64,
        bound_kept_tuples: u64,
        worker_tuples: Vec<u64>,
        rel_tuples: Vec<u64>,
        rel_messages: Vec<u64>,
        preprocess_secs: f64,
    }
    // What one worker built (the receiver side of the round).
    struct WorkerBuild {
        tries: Vec<Option<Arc<Trie>>>,
        rel_build_secs: Vec<f64>,
        active_secs: f64,
        recv_tuples: u64,
    }

    // Routing, delivery, and the per-worker builds, pipelined through the
    // cluster's transport: the coordinator routes each cold relation and
    // broadcasts a relation-done marker when its last batch is sent, so
    // receivers start that relation's trie build while later relations are
    // still in flight. On a fully warm shuffle nothing below runs — the
    // round is never opened, so the transport records 0 rounds, 0 messages,
    // and 0 bytes (the warm-path contract, asserted by the oracle tests).
    let memory_limit = cluster.config().memory_limit_bytes;
    let (mut built, outcome, build_secs, bytes_moved, wire_bytes, overlap_secs) = if any_cold {
        let induced_schemas: Vec<Schema> = infos.iter().map(|i| i.induced.clone()).collect();
        let round = cluster.open_round(induced_schemas.clone());
        let round_ref = &round;
        let infos_ref = &infos;
        let cold_ref = &cold;
        let routing_ref = &routing;
        let schemas_ref = &induced_schemas;

        let coordinator = || -> Result<RouteOutcome> {
            let mut route_span = tracer.span(COORDINATOR_LANE, "route");
            let t_pre = Instant::now();
            let mut tuples: u64 = 0;
            let mut messages: u64 = 0;
            let mut hot_routed_tuples: u64 = 0;
            let mut bound_scanned_tuples: u64 = 0;
            let mut bound_kept_tuples: u64 = 0;
            // Delivered copies per worker: the partition-fill vector the
            // skew stats read.
            let mut worker_tuples: Vec<u64> = vec![0; n];
            // Per-atom shares of the totals, for per-relation cache entries.
            let mut rel_tuples: Vec<u64> = vec![0; n_atoms];
            let mut rel_messages: Vec<u64> = vec![0; n_atoms];
            // Payload bytes parked at each worker so far, for the memory
            // budget (cached relations are charged to the index cache's own
            // byte budget, not the inbox). Modeled payload bytes on both
            // backends so the budget doesn't shift with framing overhead.
            let mut worker_bytes: Vec<u64> = vec![0; n];
            let mut rows_since_check: u64 = 0;
            for (ai, info) in infos_ref.iter().enumerate() {
                if !cold_ref[ai] {
                    continue; // served from the cache — nothing moves
                }
                // At least one cancellation checkpoint per cold atom, then
                // one per CANCEL_CHECK_EVERY scanned rows inside the
                // routing loops, plus one per sent batch.
                checkpoint(FaultSite::ShuffleRoute, cancel)?;
                let rel = resolve(db, overlay, &info.name)?;
                // Both paths route by per-attribute *coordinates* of the
                // induced (permuted) row: the plain hash, a spread
                // coordinate, or the broadcast marker — see
                // `HCubePlan::tuple_coords`. Using the induced row
                // everywhere keeps Push and Pull/Merge byte-identical under
                // heavy-hitter routing too (the spread coordinate is a
                // content hash of the row).
                let mut prow: Vec<Value> = Vec::with_capacity(info.perm.len());
                let mut coords: Vec<u32> = Vec::with_capacity(info.perm.len());
                // Selection pushdown: a tuple failing a bound equality
                // never routes.
                let keep = |prow: &[Value]| info.filters.iter().all(|&(c, v)| prow[c] == v);
                if !info.filters.is_empty() {
                    bound_scanned_tuples += rel.len() as u64;
                }
                match impl_ {
                    HCubeImpl::Push => {
                        // Per-delivery message accounting is preserved, but
                        // tuples travel in flushed batches so the transport
                        // isn't hit once per copy.
                        const PUSH_BATCH_TUPLES: u64 = 2048;
                        let mut pending: Vec<Vec<Value>> = (0..n).map(|_| Vec::new()).collect();
                        let mut pending_cnt: Vec<u64> = vec![0; n];
                        for row in rel.rows() {
                            rows_since_check += 1;
                            if rows_since_check >= CANCEL_CHECK_EVERY {
                                rows_since_check = 0;
                                checkpoint(FaultSite::ShuffleRoute, cancel)?;
                            }
                            prow.clear();
                            prow.extend(info.perm.iter().map(|&p| row[p]));
                            if !info.filters.is_empty() {
                                if !keep(&prow) {
                                    continue;
                                }
                                bound_kept_tuples += 1;
                            }
                            if plan.tuple_coords(&info.induced, &prow, ai, routing_ref, &mut coords)
                            {
                                hot_routed_tuples += 1;
                            }
                            let dests = plan.block_workers(&info.induced, &coords);
                            for &w in &dests {
                                pending[w].extend_from_slice(&prow);
                                pending_cnt[w] += 1;
                                worker_tuples[w] += 1;
                                rel_tuples[ai] += 1;
                                rel_messages[ai] += 1; // one message per copy
                                if pending_cnt[w] >= PUSH_BATCH_TUPLES {
                                    checkpoint(FaultSite::TransportSend, cancel)?;
                                    let data = std::mem::take(&mut pending[w]);
                                    worker_bytes[w] += data.len() as u64 * 4;
                                    round_ref.send(
                                        w,
                                        RoutedBatch {
                                            relation: ai,
                                            tuples: pending_cnt[w],
                                            messages: pending_cnt[w],
                                            payload: BatchPayload::Rows(data),
                                        },
                                    );
                                    pending_cnt[w] = 0;
                                }
                            }
                        }
                        for w in 0..n {
                            if pending_cnt[w] > 0 {
                                checkpoint(FaultSite::TransportSend, cancel)?;
                                let data = std::mem::take(&mut pending[w]);
                                worker_bytes[w] += data.len() as u64 * 4;
                                round_ref.send(
                                    w,
                                    RoutedBatch {
                                        relation: ai,
                                        tuples: pending_cnt[w],
                                        messages: pending_cnt[w],
                                        payload: BatchPayload::Rows(data),
                                    },
                                );
                                pending_cnt[w] = 0;
                            }
                        }
                    }
                    HCubeImpl::Pull | HCubeImpl::Merge => {
                        // Group into blocks by coordinate signature. Blocks
                        // are keyed and stored in the *induced* (permuted)
                        // layout so that the block-id decode below matches
                        // the encode.
                        let mut blocks: FxHashMap<u64, Vec<Value>> = FxHashMap::default();
                        for row in rel.rows() {
                            rows_since_check += 1;
                            if rows_since_check >= CANCEL_CHECK_EVERY {
                                rows_since_check = 0;
                                checkpoint(FaultSite::ShuffleRoute, cancel)?;
                            }
                            prow.clear();
                            prow.extend(info.perm.iter().map(|&p| row[p]));
                            if !info.filters.is_empty() {
                                if !keep(&prow) {
                                    continue;
                                }
                                bound_kept_tuples += 1;
                            }
                            if plan.tuple_coords(&info.induced, &prow, ai, routing_ref, &mut coords)
                            {
                                hot_routed_tuples += 1;
                            }
                            let id = plan.encode_block(&info.induced, &coords);
                            blocks.entry(id).or_default().extend_from_slice(&prow);
                        }
                        let mut block_ids: Vec<u64> = blocks.keys().copied().collect();
                        block_ids.sort_unstable(); // determinism
                        for id in block_ids {
                            let data = blocks.remove(&id).unwrap();
                            let block_tuples = (data.len() / info.perm.len().max(1)) as u64;
                            let block_coords = plan.block_hashes(&info.induced, id);
                            let dests = plan.block_workers(&info.induced, &block_coords);
                            let prebuilt = if impl_ == HCubeImpl::Merge {
                                // Pre-build once (sorted, induced layout);
                                // counted as preprocessing below.
                                Some(Arc::new(
                                    Relation::from_flat(info.induced.clone(), data.clone())
                                        .expect("arity preserved"),
                                ))
                            } else {
                                None
                            };
                            for &w in &dests {
                                checkpoint(FaultSite::TransportSend, cancel)?;
                                let batch = match &prebuilt {
                                    Some(block) => {
                                        worker_bytes[w] += block.size_bytes() as u64;
                                        RoutedBatch {
                                            relation: ai,
                                            tuples: block_tuples,
                                            messages: 1, // one per block delivery
                                            payload: BatchPayload::SortedBlock(Arc::clone(block)),
                                        }
                                    }
                                    None => {
                                        worker_bytes[w] += data.len() as u64 * 4;
                                        RoutedBatch {
                                            relation: ai,
                                            tuples: block_tuples,
                                            messages: 1, // one per block delivery
                                            payload: BatchPayload::Rows(data.clone()),
                                        }
                                    }
                                };
                                round_ref.send(w, batch);
                                worker_tuples[w] += block_tuples;
                                rel_tuples[ai] += block_tuples;
                                rel_messages[ai] += 1;
                            }
                        }
                    }
                }
                // The relation's last batch is out: let receivers build it.
                round_ref.finish_relation(ai);
                if let Some(limit) = memory_limit {
                    if worker_bytes.iter().any(|&b| b as usize > limit) {
                        return Err(Error::BudgetExceeded { what: "worker memory", limit });
                    }
                }
                tuples += rel_tuples[ai];
                messages += rel_messages[ai];
            }
            let preprocess_secs =
                if impl_ == HCubeImpl::Merge { t_pre.elapsed().as_secs_f64() } else { 0.0 };
            route_span.arg("tuples", tuples);
            route_span.arg("messages", messages);
            route_span.arg("hot_routed_tuples", hot_routed_tuples);
            route_span.arg("frames", round_ref.frames_sent());
            drop(route_span);
            Ok(RouteOutcome {
                tuples,
                messages,
                hot_routed_tuples,
                bound_scanned_tuples,
                bound_kept_tuples,
                worker_tuples,
                rel_tuples,
                rel_messages,
                preprocess_secs,
            })
        };

        let worker = |w: usize, span: &mut adj_trace::SpanGuard<'_>| -> Result<WorkerBuild> {
            adj_faults::inject(FaultSite::TrieBuild, cancel);
            let mut raw: Vec<Vec<Value>> = (0..n_atoms).map(|_| Vec::new()).collect();
            let mut blocks: Vec<Vec<Arc<Relation>>> = (0..n_atoms).map(|_| Vec::new()).collect();
            let mut tries: Vec<Option<Arc<Trie>>> = vec![None; n_atoms];
            let mut rel_build_secs = vec![0.0f64; n_atoms];
            let mut active_secs = 0.0f64;
            let mut recv_tuples = 0u64;
            let mut batches = 0u64;
            while let Some(delivery) = round_ref.recv(w) {
                // Time only the handling, not the wait for the coordinator:
                // `active_secs` is this worker's computation share.
                let t0 = Instant::now();
                match delivery {
                    Delivery::Batch(batch) => {
                        checkpoint(FaultSite::TransportRecv, cancel)?;
                        recv_tuples += batch.tuples;
                        batches += 1;
                        match batch.payload {
                            BatchPayload::Rows(v) => raw[batch.relation].extend_from_slice(&v),
                            BatchPayload::SortedBlock(b) => blocks[batch.relation].push(b),
                        }
                    }
                    Delivery::RelationDone(ai) => {
                        // The relation's last batch landed — build its trie
                        // now, overlapping with delivery of later relations.
                        let trie = if blocks[ai].is_empty() {
                            // sort + dedup + trie build
                            let rel = Relation::from_flat(
                                schemas_ref[ai].clone(),
                                std::mem::take(&mut raw[ai]),
                            )
                            .expect("arity preserved");
                            Trie::build(&rel)
                        } else {
                            // k-way merge of pre-sorted blocks + linear build
                            let refs: Vec<&Relation> =
                                blocks[ai].iter().map(|b| b.as_ref()).collect();
                            let rel = Relation::merge_sorted(&refs).expect("same schema");
                            blocks[ai].clear();
                            Trie::build(&rel)
                        };
                        tries[ai] = Some(Arc::new(trie));
                        rel_build_secs[ai] = t0.elapsed().as_secs_f64();
                    }
                }
                active_secs += t0.elapsed().as_secs_f64();
            }
            span.arg("inbox_tuples", recv_tuples);
            span.arg("batches", batches);
            Ok(WorkerBuild { tries, rel_build_secs, active_secs, recv_tuples })
        };

        let (coord_out, run) = cluster.run_pipelined(tracer, "build", &round, coordinator, worker);
        // Coordinator errors (cancellation mid-route, budget breach) are
        // surfaced first — they were the cause; worker-side errors are
        // downstream of the round ending early.
        let route_outcome = coord_out?;
        // A panicking build worker fails the whole query *here*, before any
        // trie is published to the index cache — siblings finished normally
        // (their results are simply dropped) and the next query rebuilds
        // from scratch against an uncorrupted cache.
        let results = run.into_results().map_err(Error::from)?;
        let mut builds: Vec<WorkerBuild> = Vec::with_capacity(results.len());
        for r in results {
            builds.push(r?);
        }
        let build_secs = builds.iter().map(|b| b.active_secs).fold(0.0, f64::max);
        debug_assert_eq!(
            builds.iter().map(|b| b.recv_tuples).sum::<u64>(),
            route_outcome.tuples,
            "every routed copy is delivered"
        );

        // Modeled pipelining overlap: with per-relation completion markers,
        // relation i's build (measured, max over workers) overlaps the
        // delivery of relations i+1.. (α-modeled, the repo's communication
        // currency). `barrier` is the serialized schedule, `done` the
        // 2-stage pipeline's finish time; their gap is the overlap win.
        let model = cluster.cost_model();
        let msg_overhead = match impl_ {
            HCubeImpl::Merge => 0.5,
            _ => 1.0,
        };
        let mut barrier = 0.0f64;
        let mut route_acc = 0.0f64;
        let mut done = 0.0f64;
        for (ai, &is_cold) in cold.iter().enumerate() {
            if !is_cold {
                continue;
            }
            let c_i = model.comm_secs(route_outcome.rel_tuples[ai])
                + route_outcome.rel_messages[ai] as f64 * model.per_message_secs * msg_overhead;
            let b_i = builds.iter().map(|b| b.rel_build_secs[ai]).fold(0.0, f64::max);
            route_acc += c_i;
            done = done.max(route_acc) + b_i;
            barrier += c_i + b_i;
        }
        let overlap_secs =
            if cluster.config().pipeline_shuffle { (barrier - done).max(0.0) } else { 0.0 };

        let built: Vec<Vec<Option<Arc<Trie>>>> = builds.into_iter().map(|b| b.tries).collect();
        (built, route_outcome, build_secs, round.bytes_sent(), round.wire_bytes(), overlap_secs)
    } else {
        let empty = RouteOutcome {
            tuples: 0,
            messages: 0,
            hot_routed_tuples: 0,
            bound_scanned_tuples: 0,
            bound_kept_tuples: 0,
            worker_tuples: vec![0; n],
            rel_tuples: vec![0; n_atoms],
            rel_messages: vec![0; n_atoms],
            preprocess_secs: 0.0,
        };
        (Vec::new(), empty, 0.0, 0, 0, 0.0)
    };
    let RouteOutcome {
        tuples,
        messages,
        hot_routed_tuples,
        bound_scanned_tuples,
        bound_kept_tuples,
        worker_tuples,
        rel_tuples,
        rel_messages,
        preprocess_secs,
    } = outcome;
    // A Cancel fault injected during the build (or a deadline that elapsed
    // while workers ran) aborts before assembly for the same reason.
    cancel.check().map_err(|c| Error::Cancelled { deadline_exceeded: c.deadline })?;

    // Assemble locals and publish the cold relations' indexes.
    let mut locals: Vec<Vec<LocalRelation>> =
        (0..n).map(|_| Vec::with_capacity(infos.len())).collect();
    let mut built_relations = 0u64;
    let mut reused_relations = 0u64;
    for (ai, info) in infos.iter().enumerate() {
        match &resolved[ai] {
            Some(entry) => {
                reused_relations += 1;
                for (w, local) in locals.iter_mut().enumerate() {
                    local.push(LocalRelation {
                        name: info.name.clone(),
                        trie: Arc::clone(&entry.tries[w]),
                    });
                }
            }
            None => {
                built_relations += 1;
                let tries: Vec<Arc<Trie>> = built
                    .iter_mut()
                    .map(|per_worker| per_worker[ai].take().expect("cold atom was built"))
                    .collect();
                if let Some(claim) = claims[ai].take() {
                    // Publish through the claim: the entry lands in the
                    // cache and every coalesced waiter wakes with it.
                    debug_assert_eq!(info.bind_tag, 0);
                    debug_assert!(info.filters.is_empty());
                    claim.publish_index(Arc::new(RelationIndex::new(
                        tries.clone(),
                        rel_tuples[ai],
                        rel_messages[ai],
                    )));
                } else if let Some(scope) = cache {
                    // Claimless cold build (disabled cache, a wait
                    // interrupted by cancellation, or a duplicate key in
                    // this shuffle): plain publish, no waiters to wake.
                    if info.bind_tag == 0 {
                        if let Some(Some(id)) = cache_ids.get(ai) {
                            let key = scope.index_key(
                                id.clone(),
                                info.induced.attrs().to_vec(),
                                plan.share(),
                                n,
                                routing.atom_tag(ai),
                                info.bind_tag,
                            );
                            // The publish-side half of the keying
                            // discipline: only binding-independent
                            // fragments may enter the shared cache.
                            debug_assert_eq!(key.bind_tag, 0);
                            debug_assert!(info.filters.is_empty());
                            scope.cache.insert_index(
                                key,
                                Arc::new(RelationIndex::new(
                                    tries.clone(),
                                    rel_tuples[ai],
                                    rel_messages[ai],
                                )),
                            );
                        }
                    }
                }
                for (w, local) in locals.iter_mut().enumerate() {
                    local.push(LocalRelation {
                        name: info.name.clone(),
                        trie: Arc::clone(&tries[w]),
                    });
                }
            }
        }
    }

    let model = cluster.cost_model();
    let msg_overhead = match impl_ {
        HCubeImpl::Merge => 0.5, // tries serialize/deserialize cheaper
        _ => 1.0,
    };
    let comm_secs =
        model.comm_secs(tuples) + messages as f64 * model.per_message_secs * msg_overhead;

    if shuffle_span.is_recording() {
        shuffle_span.detail(atom_names.join(","));
        shuffle_span.arg("tuples", tuples);
        shuffle_span.arg("bytes", bytes_moved);
        shuffle_span.arg("wire_bytes", wire_bytes);
        shuffle_span.arg("messages", messages);
        shuffle_span.arg("built_relations", built_relations);
        shuffle_span.arg("reused_relations", reused_relations);
        shuffle_span.arg("tuples_saved", tuples_saved);
    }
    drop(shuffle_span);

    Ok(ShuffleOutput {
        locals,
        report: ShuffleReport {
            tuples,
            worker_tuples: if tuples > 0 { worker_tuples } else { Vec::new() },
            hot_routed_tuples,
            messages,
            wire_bytes,
            comm_secs,
            overlap_secs,
            build_secs,
            preprocess_secs,
            built_relations,
            reused_relations,
            tuples_saved,
            bound_scanned_tuples,
            bound_kept_tuples,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::IndexCache;
    use adj_cluster::ClusterConfig;
    use adj_relational::Attr;

    /// Triangle test database over a small random-ish graph.
    fn tri_db() -> (Database, Vec<String>) {
        let edges: Vec<(Value, Value)> =
            (0..50u32).flat_map(|i| vec![(i, (i * 7 + 3) % 50), (i, (i * 13 + 1) % 50)]).collect();
        let mut db = Database::new();
        db.insert("R1", Relation::from_pairs(Attr(0), Attr(1), &edges));
        db.insert("R2", Relation::from_pairs(Attr(1), Attr(2), &edges));
        db.insert("R3", Relation::from_pairs(Attr(0), Attr(2), &edges));
        (db, vec!["R1".into(), "R2".into(), "R3".into()])
    }

    fn order3() -> Vec<Attr> {
        vec![Attr(0), Attr(1), Attr(2)]
    }

    fn ids(names: &[String]) -> Vec<Option<String>> {
        names.iter().map(|n| Some(n.clone())).collect()
    }

    #[test]
    fn all_impls_produce_identical_locals() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let outs: Vec<ShuffleOutput> = HCubeImpl::ALL
            .iter()
            .map(|&i| {
                let cluster = Cluster::new(ClusterConfig::with_workers(4));
                hcube_shuffle(&cluster, &db, &names, &plan, &order3(), i).unwrap()
            })
            .collect();
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(
                    outs[0].locals[w][ai].trie, outs[1].locals[w][ai].trie,
                    "push vs pull differ at worker {w} atom {ai}"
                );
                assert_eq!(
                    outs[1].locals[w][ai].trie, outs[2].locals[w][ai].trie,
                    "pull vs merge differ at worker {w} atom {ai}"
                );
            }
        }
    }

    #[test]
    fn impls_identical_under_permuting_order() {
        // Regression: an attribute order that permutes relation columns
        // (c ≺ a ≺ b) must still route blocks to exactly the workers Push
        // routes tuples to.
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 2], 8);
        let order = vec![Attr(2), Attr(0), Attr(1)];
        let outs: Vec<ShuffleOutput> = HCubeImpl::ALL
            .iter()
            .map(|&i| {
                let cluster = Cluster::new(ClusterConfig::with_workers(8));
                hcube_shuffle(&cluster, &db, &names, &plan, &order, i).unwrap()
            })
            .collect();
        for w in 0..8 {
            for ai in 0..names.len() {
                assert_eq!(outs[0].locals[w][ai].trie, outs[1].locals[w][ai].trie);
                assert_eq!(outs[1].locals[w][ai].trie, outs[2].locals[w][ai].trie);
            }
        }
    }

    #[test]
    fn local_union_covers_every_tuple() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        for (ai, name) in names.iter().enumerate() {
            let original = db.get(name).unwrap();
            let mut parts: Vec<Relation> =
                (0..4).map(|w| out.locals[w][ai].trie.to_relation()).collect();
            let mut all = parts.remove(0);
            for p in parts {
                all = all.union(&p).unwrap();
            }
            // permute back to original column order for comparison
            let back = all.permute(original.schema().attrs()).unwrap();
            assert_eq!(&back, original, "{name} lost tuples in shuffle");
        }
    }

    #[test]
    fn push_sends_more_messages_than_pull() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 2], 8);
        let c1 = Cluster::new(ClusterConfig::with_workers(8));
        let push = hcube_shuffle(&c1, &db, &names, &plan, &order3(), HCubeImpl::Push).unwrap();
        let c2 = Cluster::new(ClusterConfig::with_workers(8));
        let pull = hcube_shuffle(&c2, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        assert_eq!(push.report.tuples, pull.report.tuples, "same payload");
        assert!(
            push.report.messages > 10 * pull.report.messages,
            "push {} vs pull {} messages",
            push.report.messages,
            pull.report.messages
        );
        assert!(push.report.comm_secs > pull.report.comm_secs);
    }

    #[test]
    fn tuple_count_matches_dup_model() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Push).unwrap();
        // Each relation R is delivered |R|·dup(R,p) copies when all cubes
        // map to distinct workers (4 cubes on 4 workers here).
        let expect: u64 = names
            .iter()
            .map(|n| {
                let r = db.get(n).unwrap();
                r.len() as u64 * plan.dup_factor(r.schema())
            })
            .sum();
        assert_eq!(out.report.tuples, expect);
    }

    #[test]
    fn memory_budget_fails_shuffle() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![1, 1, 1], 1);
        let mut cfg = ClusterConfig::with_workers(1);
        cfg.memory_limit_bytes = Some(64);
        let cluster = Cluster::new(cfg);
        let err =
            hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }));
    }

    #[test]
    fn merge_reports_preprocess_time() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Merge).unwrap();
        assert!(out.report.preprocess_secs > 0.0);
        let c2 = Cluster::new(ClusterConfig::with_workers(4));
        let pull = hcube_shuffle(&c2, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        assert_eq!(pull.report.preprocess_secs, 0.0);
    }

    #[test]
    fn order_missing_attr_errors() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let bad_order = vec![Attr(0), Attr(1)]; // attr 2 missing
        assert!(hcube_shuffle(&cluster, &db, &names, &plan, &bad_order, HCubeImpl::Pull).is_err());
    }

    #[test]
    fn warm_shuffle_is_byte_identical_and_moves_nothing() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let cache = IndexCache::new(64 << 20);
        let scope = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &[] };
        let cold = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &ids(&names),
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(cold.report.built_relations, 3);
        assert_eq!(cold.report.reused_relations, 0);
        assert!(cold.report.tuples > 0);

        let warm = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &ids(&names),
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(warm.report.reused_relations, 3);
        assert_eq!(warm.report.built_relations, 0);
        assert_eq!(warm.report.tuples, 0, "a warm shuffle moves nothing");
        assert_eq!(warm.report.tuples_saved, cold.report.tuples);
        assert_eq!(warm.report.build_secs, 0.0);
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(cold.locals[w][ai].trie, warm.locals[w][ai].trie);
                assert!(
                    Arc::ptr_eq(&cold.locals[w][ai].trie, &warm.locals[w][ai].trie),
                    "warm locals must share the cached handle, not a copy"
                );
            }
        }
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn epoch_bump_forces_rebuild() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let cache = IndexCache::new(64 << 20);
        let s0 = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &[] };
        hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&s0),
            &ids(&names),
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        let s1 = IndexScope { cache: &cache, db_tag: 1, epoch: 1, versions: &[] };
        let out = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&s1),
            &ids(&names),
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(out.report.reused_relations, 0, "stale epoch must not serve");
        assert_eq!(out.report.built_relations, 3);
    }

    /// A triangle database where one value dominates R1's `a` column.
    fn skewed_tri_db() -> (Database, Vec<String>) {
        let mut hub: Vec<(Value, Value)> = (0..120u32).map(|i| (7, i + 100)).collect();
        hub.extend((0..60u32).map(|i| (i % 23, (i * 11 + 1) % 23 + 300)));
        let tail: Vec<(Value, Value)> =
            (0..180u32).map(|i| (i % 40, (i * 13 + 5) % 40 + 100)).collect();
        let mut db = Database::new();
        db.insert("R1", Relation::from_pairs(Attr(0), Attr(1), &hub));
        db.insert("R2", Relation::from_pairs(Attr(1), Attr(2), &tail));
        db.insert("R3", Relation::from_pairs(Attr(0), Attr(2), &tail));
        (db, vec!["R1".into(), "R2".into(), "R3".into()])
    }

    fn shuffle_hot(
        db: &Database,
        names: &[String],
        plan: &HCubePlan,
        impl_: HCubeImpl,
        hot: &HotValues,
    ) -> ShuffleOutput {
        let cluster = Cluster::new(ClusterConfig::with_workers(plan.num_workers()));
        hcube_shuffle_cached(
            &cluster,
            db,
            names,
            plan,
            &order3(),
            impl_,
            None,
            &[],
            &[],
            hot,
            &BoundValues::none(),
        )
        .unwrap()
    }

    #[test]
    fn hot_routing_covers_all_tuples_and_balances_the_spreader() {
        let (db, names) = skewed_tri_db();
        // All partitioning on `a` (share 4 on attr 0) — the worst case for
        // the hub value 7, which plain hashing pins to one coordinate.
        let plan = HCubePlan::new(vec![4, 1, 1], 4);
        let hot = HotValues::new(vec![vec![7], vec![], vec![]]);

        let naive = shuffle_hot(&db, &names, &plan, HCubeImpl::Merge, &HotValues::none());
        let routed = shuffle_hot(&db, &names, &plan, HCubeImpl::Merge, &hot);
        assert!(routed.report.hot_routed_tuples > 0);
        assert_eq!(naive.report.hot_routed_tuples, 0);

        // Every original tuple still reaches some worker.
        for (ai, name) in names.iter().enumerate() {
            let original = db.get(name).unwrap();
            let mut all = routed.locals[0][ai].trie.to_relation();
            for w in 1..4 {
                all = all.union(&routed.locals[w][ai].trie.to_relation()).unwrap();
            }
            let back = all.permute(original.schema().attrs()).unwrap();
            assert_eq!(&back, original, "{name} lost tuples under hot routing");
        }

        // R1 is the spreader for `a` (largest relation containing it): its
        // hub tuples now spread across the dimension, so the fullest
        // partition shrinks versus naive hashing.
        let max_naive = naive.report.worker_tuples.iter().copied().max().unwrap();
        let max_routed = routed.report.worker_tuples.iter().copied().max().unwrap();
        assert!(
            max_routed < max_naive,
            "routing must shrink the hottest partition: {max_routed} vs {max_naive}"
        );
        let mean_routed = routed.report.tuples as f64 / 4.0;
        assert!(
            (max_routed as f64) <= 2.0 * mean_routed,
            "balanced shuffle: max {max_routed} vs mean {mean_routed}"
        );
    }

    #[test]
    fn hot_routing_is_identical_across_implementations() {
        let (db, names) = skewed_tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let hot = HotValues::new(vec![vec![7], vec![], vec![]]);
        let outs: Vec<ShuffleOutput> =
            HCubeImpl::ALL.iter().map(|&i| shuffle_hot(&db, &names, &plan, i, &hot)).collect();
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(outs[0].locals[w][ai].trie, outs[1].locals[w][ai].trie);
                assert_eq!(outs[1].locals[w][ai].trie, outs[2].locals[w][ai].trie);
            }
        }
    }

    #[test]
    fn hot_routing_requires_bijective_cube_map() {
        let (db, names) = skewed_tri_db();
        // 8 cubes on 4 workers: the spreader-ownership rule does not apply,
        // so the table must stay inert and locals must equal plain hashing.
        let plan = HCubePlan::new(vec![4, 2, 1], 4);
        let hot = HotValues::new(vec![vec![7], vec![], vec![]]);
        let routed = shuffle_hot(&db, &names, &plan, HCubeImpl::Pull, &hot);
        let naive = shuffle_hot(&db, &names, &plan, HCubeImpl::Pull, &HotValues::none());
        assert_eq!(routed.report.hot_routed_tuples, 0);
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(routed.locals[w][ai].trie, naive.locals[w][ai].trie);
            }
        }
    }

    #[test]
    fn routed_and_unrouted_cache_entries_never_alias() {
        let (db, names) = skewed_tri_db();
        let plan = HCubePlan::new(vec![4, 1, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let cache = IndexCache::new(64 << 20);
        let scope = IndexScope { cache: &cache, db_tag: 3, epoch: 0, versions: &[] };
        let hot = HotValues::new(vec![vec![7], vec![], vec![]]);
        let naive = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &ids(&names),
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(naive.report.built_relations, 3);
        // Same relations, same share — but skew-routed: the relations that
        // contain the hot attribute must rebuild, not reuse the hash-routed
        // tries (their fragments differ per worker). R2(b,c) contains no
        // hot attribute, so its fragments are byte-identical and its plain
        // entry is safely reused.
        let routed = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &ids(&names),
            &[],
            &hot,
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(routed.report.reused_relations, 1, "only the untouched R2 may alias");
        assert_eq!(routed.report.built_relations, 2, "hot-attr relations must rebuild");
        // And the routed entries are themselves reusable.
        let warm = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &ids(&names),
            &[],
            &hot,
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(warm.report.reused_relations, 3);
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(warm.locals[w][ai].trie, routed.locals[w][ai].trie);
            }
        }
    }

    #[test]
    fn bound_filter_drops_non_matching_tuples_before_routing() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![1, 2, 2], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let unbound =
            hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Merge).unwrap();

        // Bind a = 7: R1(a,b) and R3(a,c) are filtered, R2(b,c) untouched.
        let bound = BoundValues::new(vec![(Attr(0), 7)]).unwrap();
        let c2 = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle_cached(
            &c2,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            None,
            &[],
            &[],
            &HotValues::none(),
            &bound,
        )
        .unwrap();
        let r1 = db.get("R1").unwrap();
        let r3 = db.get("R3").unwrap();
        assert_eq!(out.report.bound_scanned_tuples, (r1.len() + r3.len()) as u64);
        assert!(out.report.bound_kept_tuples < out.report.bound_scanned_tuples);
        assert!(
            out.report.tuples < unbound.report.tuples,
            "selection pushdown must shrink the shuffle: {} vs {}",
            out.report.tuples,
            unbound.report.tuples
        );

        // Exactly the matching tuples survive, none are lost.
        for (ai, name) in [(0usize, "R1"), (2, "R3")] {
            let original = db.get(name).unwrap();
            let mut all = out.locals[0][ai].trie.to_relation();
            for w in 1..4 {
                all = all.union(&out.locals[w][ai].trie.to_relation()).unwrap();
            }
            let back = all.permute(original.schema().attrs()).unwrap();
            let expected: Vec<&[Value]> = original.rows().filter(|r| r[0] == 7).collect();
            assert_eq!(
                back.rows().collect::<Vec<_>>(),
                expected,
                "{name} must hold exactly the a=7 tuples"
            );
        }
        // R2 contains no bound attribute: shuffled in full.
        let mut all = out.locals[0][1].trie.to_relation();
        for w in 1..4 {
            all = all.union(&out.locals[w][1].trie.to_relation()).unwrap();
        }
        assert_eq!(&all.permute(&[Attr(1), Attr(2)]).unwrap(), db.get("R2").unwrap());
    }

    #[test]
    fn bound_shuffles_bypass_the_shared_cache_without_aliasing() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![1, 2, 2], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let cache = IndexCache::new(64 << 20);
        let scope = IndexScope { cache: &cache, db_tag: 5, epoch: 0, versions: &[] };
        let run = |bound: &BoundValues| {
            hcube_shuffle_cached(
                &cluster,
                &db,
                &names,
                &plan,
                &order3(),
                HCubeImpl::Merge,
                Some(&scope),
                &ids(&names),
                &[],
                &HotValues::none(),
                bound,
            )
            .unwrap()
        };
        // Warm the unbound entries.
        let cold = run(&BoundValues::none());
        assert_eq!(cold.report.built_relations, 3);
        assert_eq!(cache.len(), 3);

        // A bound shuffle may reuse only the *untouched* relation (R2): the
        // filtered ones build fresh per binding and publish nothing.
        let bound = BoundValues::new(vec![(Attr(0), 7)]).unwrap();
        let b1 = run(&bound);
        assert_eq!(b1.report.reused_relations, 1, "only R2(b,c) is binding-independent");
        assert_eq!(b1.report.built_relations, 2);
        assert_eq!(cache.len(), 3, "bound fragments must never be published");
        for w in 0..4 {
            assert!(
                b1.locals[w][0].trie.tuples() <= cold.locals[w][0].trie.tuples(),
                "bound R1 fragments are a subset, never the cached full relation"
            );
        }

        // The shared entries stay pristine: an unbound re-run is fully warm
        // and byte-identical to the original cold shuffle.
        let warm = run(&BoundValues::none());
        assert_eq!(warm.report.reused_relations, 3);
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(warm.locals[w][ai].trie, cold.locals[w][ai].trie);
            }
        }

        // And a *second* identical binding rebuilds its fragments
        // identically (determinism of the bypass path).
        let b2 = run(&bound);
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(b1.locals[w][ai].trie, b2.locals[w][ai].trie);
            }
        }
    }

    #[test]
    fn worker_tuples_sum_to_total() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order3(), HCubeImpl::Pull).unwrap();
        assert_eq!(out.report.worker_tuples.len(), 4);
        assert_eq!(out.report.worker_tuples.iter().sum::<u64>(), out.report.tuples);
    }

    #[test]
    fn mixed_hit_and_miss_builds_only_the_cold_relation() {
        let (db, names) = tri_db();
        let plan = HCubePlan::new(vec![2, 2, 1], 4);
        let cluster = Cluster::new(ClusterConfig::with_workers(4));
        let cache = IndexCache::new(64 << 20);
        let scope = IndexScope { cache: &cache, db_tag: 1, epoch: 0, versions: &[] };
        // Warm only R1 and R3.
        let partial = vec![Some("R1".to_string()), None, Some("R3".to_string())];
        hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &partial,
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        let out = hcube_shuffle_cached(
            &cluster,
            &db,
            &names,
            &plan,
            &order3(),
            HCubeImpl::Merge,
            Some(&scope),
            &ids(&names),
            &[],
            &HotValues::none(),
            &BoundValues::none(),
        )
        .unwrap();
        assert_eq!(out.report.reused_relations, 2);
        assert_eq!(out.report.built_relations, 1);
        // The mixed shuffle is still byte-identical to a cold one.
        let c2 = Cluster::new(ClusterConfig::with_workers(4));
        let cold = hcube_shuffle(&c2, &db, &names, &plan, &order3(), HCubeImpl::Merge).unwrap();
        for w in 0..4 {
            for ai in 0..names.len() {
                assert_eq!(out.locals[w][ai].trie, cold.locals[w][ai].trie);
            }
        }
    }
}
