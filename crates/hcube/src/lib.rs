//! # adj-hcube — the HCube one-round shuffle (Sec. II-A & V of the paper)
//!
//! HCube divides the output space of a join query into hypercubes using a
//! *share vector* `p = (p1, …, pn)` (one partition count per attribute),
//! assigns hypercubes to workers, and shuffles every input tuple to all
//! workers whose hypercube coordinates match the tuple's per-attribute hash
//! values. After one round, every worker can evaluate the query on its local
//! data alone.
//!
//! This crate provides:
//!
//! * [`share::optimize_share`] — the share optimizer: minimize communication
//!   `Σ_R |R|·dup(R,p)` subject to `p ≥ 1` and the per-worker memory
//!   constraint (optimization program (3) in Sec. III-B), by exact
//!   enumeration (tiny for `N* ≤ 64`);
//! * [`HCubePlan`] — coordinate arithmetic and tuple routing;
//! * [`shuffle::hcube_shuffle`] — three implementations: the original
//!   tuple-at-a-time **Push**, and the paper's optimized **Pull** (block
//!   transfer) and **Merge** (block transfer with pre-built sorted blocks,
//!   so local tries need only a k-way merge) — the subject of Fig. 9;
//! * [`cache::IndexCache`] — the cross-query index cache: shuffled
//!   partitions and built tries published as shared `Arc<Trie>` handles,
//!   keyed by `(relation identity, induced order, share, workers, database
//!   epoch, routing tag)`, so [`shuffle::hcube_shuffle_cached`] skips
//!   routing, transfer, and build entirely for warm relations;
//! * [`skew`] — heavy-hitter routing: hot join values are *spread* across
//!   their hypercube dimension by one designated spreader relation and
//!   *broadcast* by the others, so a skewed input no longer collapses onto
//!   one coordinate, while spreader ownership keeps results byte-identical
//!   (no binding is ever produced twice).

pub mod cache;
pub mod patch;
pub mod plan;
pub mod share;
pub mod shuffle;
pub mod skew;

pub use cache::{
    BagKey, BuildClaim, CacheLookup, IndexCache, IndexCacheStats, IndexKey, IndexScope,
    RelationIndex,
};
pub use patch::{patch_relation_indexes, PatchOutcome};
pub use plan::HCubePlan;
pub use share::{optimize_share, ShareInput};
pub use shuffle::{
    hcube_shuffle, hcube_shuffle_cached, hcube_shuffle_cached_traced, HCubeImpl, LocalRelation,
    ShuffleOutput, ShuffleReport,
};
pub use skew::{HotDecision, HotValues, ShuffleRouting};
