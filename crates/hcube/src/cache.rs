//! The cross-query index cache: shuffled partitions and built tries as
//! first-class, reusable artifacts.
//!
//! Under serving traffic the database is immutable between queries, yet
//! every execution re-runs the HCube shuffle and rebuilds the same
//! level-wise tries — on a warm plan cache that communication phase dwarfs
//! the join itself. The paper's Merge-HCube pre-builds sorted blocks so
//! tries assemble by merge instead of sort (Sec. V); this cache takes the
//! idea to its fixed point: once a relation has been shuffled and indexed
//! for a given `(induced attribute order, share vector, worker count)`
//! against a given database state, the per-worker [`Trie`]s are published
//! as shared `Arc` handles and every later query with the same key joins
//! over them directly — no routing, no sorting, no build.
//!
//! Two artifact kinds share one LRU byte budget:
//!
//! * **relation indexes** ([`RelationIndex`]) — the per-worker tries of one
//!   shuffled relation, keyed by [`IndexKey`];
//! * **bag relations** — materialized hypertree-bag joins (ADJ's
//!   pre-computing phase, and GHD-Yannakakis bags), keyed by [`BagKey`].
//!   Bag contents are a pure function of the base relations, the member
//!   atoms, and the attribute order, so a stable label string identifies
//!   them across queries.
//!
//! Keys fold in a database tag and its statistics epoch: re-registering a
//! database bumps the epoch, so stale entries stop matching (and
//! [`IndexCache::invalidate_db`] drops them eagerly). Eviction is
//! least-recently-used over *bytes*, not entries, because the whole point
//! of the budget is to charge index memory against the cluster's
//! `memory_limit_bytes`.

use adj_faults::CancelToken;
use adj_relational::hash::FxHashMap;
use adj_relational::{Attr, Relation, Trie};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Identity of one cached relation index: the relation (or bag label), the
/// induced attribute order its trie levels follow, the hypercube share
/// vector and worker count that routed it, and the database state it was
/// built against.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexKey {
    /// Stable tag of the owning database (hash of its name).
    pub db_tag: u64,
    /// The database's statistics epoch at build time.
    pub epoch: u64,
    /// Stable identity of the relation: its name for base relations, a
    /// content-describing label for pre-computed bags.
    pub relation: String,
    /// The order-induced attribute permutation the trie levels follow.
    pub induced: Vec<Attr>,
    /// The share vector `p` of the shuffle that partitioned it.
    pub share: Vec<u32>,
    /// Worker count (the share vector alone does not fix the cube→worker
    /// assignment).
    pub num_workers: usize,
    /// Heavy-hitter routing tag of the shuffle that built the entry
    /// ([`crate::ShuffleRouting::atom_tag`]): 0 for plain hashing, a
    /// fingerprint of the hot-value table and this relation's
    /// spread-vs-broadcast role otherwise — so skew-routed tries never
    /// collide with hash-routed ones (their per-worker fragments differ).
    pub route_tag: u64,
    /// Bound-constant tag
    /// ([`BoundValues::tag_for`](adj_relational::BoundValues::tag_for)): 0
    /// for unbound fragments, a value-bearing fingerprint of the bound
    /// `attr = value` selections that filtered this relation otherwise —
    /// the `route_tag`-discipline guarantee that a bound-level entry can
    /// never alias an unbound one. In practice bound fragments are not
    /// published at all (the shuffle bypasses the cache for them; see
    /// [`crate::hcube_shuffle_cached`]), so shared entries always carry 0
    /// here — this field is the belt to that suspenders.
    pub bind_tag: u64,
    /// The relation's delta sequence (`adj-delta`'s per-relation batch
    /// counter) at build time. Mutating a relation bumps only *its*
    /// sequence, so entries for other relations keep matching — this is the
    /// per-relation replacement for the global epoch bump. Patched entries
    /// ([`crate::patch_relation_indexes`]) are republished under the new
    /// sequence.
    pub delta_seq: u64,
}

/// Identity of one cached bag relation (a materialized hypertree-bag join).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BagKey {
    /// Stable tag of the owning database.
    pub db_tag: u64,
    /// The database's statistics epoch at build time.
    pub epoch: u64,
    /// Content-describing label: evaluation kind, member atom names, and
    /// the attribute order of the result.
    pub label: String,
}

/// One shuffled relation's reusable artifacts: per-worker tries plus the
/// communication cost the original shuffle paid (so reports can state what
/// a hit saved).
#[derive(Debug)]
pub struct RelationIndex {
    /// `tries[w]` is worker `w`'s local fragment, indexed in the key's
    /// induced order.
    pub tries: Vec<Arc<Trie>>,
    /// Delivered tuple copies the original shuffle moved for this relation.
    pub tuples: u64,
    /// Transfer units the original shuffle paid for this relation.
    pub messages: u64,
    /// Resident bytes across all workers' tries.
    pub bytes: usize,
}

impl RelationIndex {
    /// Builds the entry, computing its resident size.
    pub fn new(tries: Vec<Arc<Trie>>, tuples: u64, messages: u64) -> Self {
        let bytes = tries.iter().map(|t| t.size_bytes()).sum();
        RelationIndex { tries, tuples, messages, bytes }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum EntryKey {
    Index(IndexKey),
    Bag(BagKey),
}

impl EntryKey {
    fn db_tag(&self) -> u64 {
        match self {
            EntryKey::Index(k) => k.db_tag,
            EntryKey::Bag(k) => k.db_tag,
        }
    }
}

#[derive(Debug, Clone)]
enum Artifact {
    Index(Arc<RelationIndex>),
    Bag(Arc<Relation>),
}

#[derive(Debug)]
struct Entry {
    artifact: Artifact,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheMap {
    map: FxHashMap<EntryKey, Entry>,
    tick: u64,
    resident_bytes: usize,
}

impl CacheMap {
    /// Evicts least-recently-used entries until `need` more bytes fit under
    /// `capacity`. Returns the number of entries evicted.
    fn make_room(&mut self, need: usize, capacity: usize) -> u64 {
        let mut evicted = 0u64;
        while self.resident_bytes + need > capacity && !self.map.is_empty() {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map");
            if let Some(e) = self.map.remove(&lru) {
                self.resident_bytes -= e.bytes;
                evicted += 1;
            }
        }
        evicted
    }

    fn insert(&mut self, key: EntryKey, artifact: Artifact, bytes: usize) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let fresh = self
            .map
            .insert(key, Entry { artifact, bytes, last_used: tick })
            .map(|old| {
                self.resident_bytes -= old.bytes;
                false
            })
            .unwrap_or(true);
        self.resident_bytes += bytes;
        fresh
    }

    fn get(&mut self, key: &EntryKey) -> Option<Artifact> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.artifact.clone()
        })
    }
}

/// One in-flight build registration: concurrent misses on the same key
/// wait here until the builder publishes (or abandons) its claim.
#[derive(Debug, Default)]
struct PendingBuild {
    done: Mutex<bool>,
    cv: Condvar,
}

/// How often a coalesced waiter re-polls its [`CancelToken`] while blocked
/// on another query's in-flight build. Builds are milliseconds-scale, so a
/// short poll keeps deadline latency tight without busy-waiting.
const PENDING_POLL: Duration = Duration::from_millis(1);

/// Outcome of a coalescing lookup ([`IndexCache::get_index_or_claim`] /
/// [`IndexCache::get_bag_or_claim`]).
#[derive(Debug)]
pub enum CacheLookup<'a, T> {
    /// A reusable artifact. `coalesced` is true when this lookup blocked on
    /// a concurrent in-flight build and reused its result instead of
    /// running a redundant build of its own.
    Hit {
        /// The cached artifact.
        value: T,
        /// Whether the artifact came from a build this lookup waited for.
        coalesced: bool,
    },
    /// Nothing cached. When `Some`, the claim registers this caller as the
    /// key's one in-flight builder: concurrent misses on the same key block
    /// until the claim publishes or drops. `None` means coalescing is
    /// unavailable for this miss (the cache is disabled, the wait was
    /// interrupted by cancellation, or the caller already claimed an equal
    /// key) — build without any publishing obligation.
    Miss(Option<BuildClaim<'a>>),
}

/// Exclusive permission to build one cache entry, handed out by
/// [`IndexCache::get_index_or_claim`] / [`IndexCache::get_bag_or_claim`] on
/// a cold miss. Publish the built artifact through
/// [`BuildClaim::publish_index`] / [`BuildClaim::publish_bag`]; dropping an
/// unpublished claim (error, cancellation, panic unwind) *abandons* the
/// build — waiters wake, re-check the cache, and the first one through
/// becomes the new builder, so an aborted query never strands the key.
///
/// Deadlock discipline for holders: a query may hold several *index* claims
/// at once only when it acquired them in sorted key order, and may wait on
/// an index claim while holding a *bag* claim — but never the reverse
/// (nothing waits on a bag while holding an index claim), and at most one
/// bag claim is held at a time. The shuffle and the executor's bag loop
/// both follow this; see `hcube_shuffle_cached`.
#[derive(Debug)]
pub struct BuildClaim<'a> {
    cache: &'a IndexCache,
    key: Option<EntryKey>,
}

impl BuildClaim<'_> {
    /// Publishes a built relation index under the claimed key and releases
    /// every coalesced waiter. No-op if the claim was for a bag key.
    pub fn publish_index(mut self, index: Arc<RelationIndex>) {
        let Some(key) = self.key.take() else { return };
        debug_assert!(matches!(key, EntryKey::Index(_)), "claim kind mismatch");
        let bytes = index.bytes;
        self.cache.insert_entry(key.clone(), Artifact::Index(index), bytes);
        self.cache.finish_pending(&key);
    }

    /// Publishes a materialized bag relation under the claimed key and
    /// releases every coalesced waiter. No-op if the claim was for an
    /// index key.
    pub fn publish_bag(mut self, rel: Arc<Relation>) {
        let Some(key) = self.key.take() else { return };
        debug_assert!(matches!(key, EntryKey::Bag(_)), "claim kind mismatch");
        let bytes = rel.size_bytes();
        self.cache.insert_entry(key.clone(), Artifact::Bag(rel), bytes);
        self.cache.finish_pending(&key);
    }
}

impl Drop for BuildClaim<'_> {
    fn drop(&mut self) {
        // Not published: abandon. Waiters wake, find the cache still cold,
        // and race to claim the key themselves.
        if let Some(key) = self.key.take() {
            self.cache.finish_pending(&key);
        }
    }
}

/// Counters describing index-cache behaviour since service start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// Lookups that found a reusable artifact.
    pub hits: u64,
    /// Lookups that required a fresh shuffle/build.
    pub misses: u64,
    /// Artifacts published.
    pub insertions: u64,
    /// Artifacts evicted to make room.
    pub evictions: u64,
    /// Artifacts dropped by explicit invalidation (database mutation).
    pub invalidations: u64,
    /// Tuple copies whose shuffle was skipped thanks to hits.
    pub tuples_saved: u64,
    /// Redundant builds avoided by request coalescing: lookups that missed
    /// while an equal key was already being built, blocked on that build,
    /// and reused its published artifact.
    pub coalesced_builds: u64,
    /// Current resident bytes across all cached artifacts.
    pub resident_bytes: usize,
    /// The byte budget eviction enforces.
    pub capacity_bytes: usize,
    /// Current number of cached artifacts.
    pub len: usize,
}

impl IndexCacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, byte-budgeted LRU cache of shuffled relation indexes and
/// materialized bag relations.
#[derive(Debug)]
pub struct IndexCache {
    capacity_bytes: usize,
    inner: Mutex<CacheMap>,
    /// In-flight builds, for request coalescing: a key is present exactly
    /// while one claimant is building it. Guarded separately from `inner`
    /// so waiters never block cache traffic.
    pending: Mutex<FxHashMap<EntryKey, Arc<PendingBuild>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    tuples_saved: AtomicU64,
    coalesced: AtomicU64,
}

impl IndexCache {
    /// Creates a cache holding at most `capacity_bytes` of artifacts
    /// (0 disables it: every lookup misses, every insert is dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        IndexCache {
            capacity_bytes,
            inner: Mutex::new(CacheMap::default()),
            pending: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            tuples_saved: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Locks the map, *recovering* from lock poisoning instead of
    /// propagating it. The cache is pure derived state — every entry can be
    /// rebuilt from the database — so if a panic ever lands while the lock
    /// is held (leaving the map possibly half-updated), the correct
    /// response is to drop the whole map and carry on cold, not to wedge
    /// every later query on the same `.expect("poisoned")`. The dropped
    /// entries are counted as invalidations.
    fn lock_recovering(&self) -> std::sync::MutexGuard<'_, CacheMap> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                let dropped = guard.map.len() as u64;
                guard.map.clear();
                guard.resident_bytes = 0;
                self.invalidations.fetch_add(dropped, Ordering::Relaxed);
                self.inner.clear_poison();
                guard
            }
        }
    }

    /// Looks up a relation index, refreshing its recency on a hit and
    /// crediting the shuffle volume the hit saved.
    pub fn get_index(&self, key: &IndexKey) -> Option<Arc<RelationIndex>> {
        if self.capacity_bytes == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let got = self.lock_recovering().get(&EntryKey::Index(key.clone()));
        match got {
            Some(Artifact::Index(idx)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.tuples_saved.fetch_add(idx.tuples, Ordering::Relaxed);
                Some(idx)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a relation index. Entries larger than the whole budget are
    /// dropped; otherwise LRU entries are evicted until it fits. A
    /// concurrent insert under the same key wins by arrival order — both
    /// artifacts are equivalent by key construction.
    pub fn insert_index(&self, key: IndexKey, index: Arc<RelationIndex>) {
        let bytes = index.bytes;
        self.insert_entry(EntryKey::Index(key), Artifact::Index(index), bytes);
    }

    /// Looks up a materialized bag relation.
    pub fn get_bag(&self, key: &BagKey) -> Option<Arc<Relation>> {
        if self.capacity_bytes == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let got = self.lock_recovering().get(&EntryKey::Bag(key.clone()));
        match got {
            Some(Artifact::Bag(rel)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rel)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a materialized bag relation.
    pub fn insert_bag(&self, key: BagKey, rel: Arc<Relation>) {
        let bytes = rel.size_bytes();
        self.insert_entry(EntryKey::Bag(key), Artifact::Bag(rel), bytes);
    }

    /// Coalescing relation-index lookup: a hit behaves like
    /// [`IndexCache::get_index`]; a *cold* miss hands back a [`BuildClaim`]
    /// registering this caller as the key's one in-flight builder, and a
    /// miss that finds a build already in flight blocks (polling `cancel`)
    /// until that build publishes, then returns its artifact as a
    /// `coalesced` hit. See [`BuildClaim`] for the holder's deadlock
    /// discipline.
    pub fn get_index_or_claim(
        &self,
        key: &IndexKey,
        cancel: &CancelToken,
    ) -> CacheLookup<'_, Arc<RelationIndex>> {
        match self.lookup_or_claim(EntryKey::Index(key.clone()), cancel) {
            CacheLookup::Hit { value: Artifact::Index(idx), coalesced } => {
                CacheLookup::Hit { value: idx, coalesced }
            }
            // EntryKey carries the artifact kind, so an Index key can never
            // resolve to a Bag artifact.
            CacheLookup::Hit { .. } => unreachable!("index key resolved to a bag artifact"),
            CacheLookup::Miss(claim) => CacheLookup::Miss(claim),
        }
    }

    /// Coalescing bag lookup; see [`IndexCache::get_index_or_claim`].
    pub fn get_bag_or_claim(
        &self,
        key: &BagKey,
        cancel: &CancelToken,
    ) -> CacheLookup<'_, Arc<Relation>> {
        match self.lookup_or_claim(EntryKey::Bag(key.clone()), cancel) {
            CacheLookup::Hit { value: Artifact::Bag(rel), coalesced } => {
                CacheLookup::Hit { value: rel, coalesced }
            }
            CacheLookup::Hit { .. } => unreachable!("bag key resolved to an index artifact"),
            CacheLookup::Miss(claim) => CacheLookup::Miss(claim),
        }
    }

    fn lock_pending(&self) -> MutexGuard<'_, FxHashMap<EntryKey, Arc<PendingBuild>>> {
        // The registry holds only liveness slots — every claimant removes
        // its own slot via `finish_pending` (publish or Drop), so after a
        // panic the map is still structurally sound; just take it back.
        self.pending.lock().unwrap_or_else(|poisoned| {
            self.pending.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Marks `key`'s in-flight build finished (published or abandoned) and
    /// wakes every coalesced waiter.
    fn finish_pending(&self, key: &EntryKey) {
        let slot = self.lock_pending().remove(key);
        if let Some(slot) = slot {
            let mut done = slot.done.lock().unwrap_or_else(|poisoned| {
                slot.done.clear_poison();
                poisoned.into_inner()
            });
            *done = true;
            slot.cv.notify_all();
        }
    }

    fn lookup_or_claim(&self, key: EntryKey, cancel: &CancelToken) -> CacheLookup<'_, Artifact> {
        if self.capacity_bytes == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss(None);
        }
        let mut waited = false;
        loop {
            if let Some(artifact) = self.lock_recovering().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Artifact::Index(idx) = &artifact {
                    self.tuples_saved.fetch_add(idx.tuples, Ordering::Relaxed);
                }
                if waited {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                return CacheLookup::Hit { value: artifact, coalesced: waited };
            }
            let slot = {
                let mut pending = self.lock_pending();
                match pending.get(&key) {
                    Some(slot) => Arc::clone(slot),
                    None => {
                        pending.insert(key.clone(), Arc::new(PendingBuild::default()));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return CacheLookup::Miss(Some(BuildClaim { cache: self, key: Some(key) }));
                    }
                }
            };
            // Another query is building this key right now: wait for it,
            // polling the token so a deadline fires promptly. On
            // cancellation, give up coalescing rather than block past the
            // deadline — the caller's next cancellation checkpoint raises
            // the error before any redundant build gets far.
            waited = true;
            let mut done = slot.done.lock().unwrap_or_else(|poisoned| {
                slot.done.clear_poison();
                poisoned.into_inner()
            });
            while !*done {
                if cancel.check().is_err() {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return CacheLookup::Miss(None);
                }
                let (guard, _timeout) =
                    slot.cv.wait_timeout(done, PENDING_POLL).unwrap_or_else(|poisoned| {
                        slot.done.clear_poison();
                        poisoned.into_inner()
                    });
                done = guard;
            }
            // The build finished: published (the retry hits), abandoned or
            // already evicted (the retry claims and this caller builds).
        }
    }

    fn insert_entry(&self, key: EntryKey, artifact: Artifact, bytes: usize) {
        if self.capacity_bytes == 0 || bytes > self.capacity_bytes {
            return;
        }
        let mut inner = self.lock_recovering();
        let evicted = inner.make_room(bytes, self.capacity_bytes);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if inner.insert(key, artifact, bytes) {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every artifact built against database `db_tag` — the
    /// invalidation hook for database mutation (the epoch in every key
    /// already stops stale entries from matching; this frees their bytes
    /// eagerly).
    pub fn invalidate_db(&self, db_tag: u64) {
        let mut inner = self.lock_recovering();
        let before = inner.map.len();
        let mut freed = 0usize;
        inner.map.retain(|k, e| {
            let keep = k.db_tag() != db_tag;
            if !keep {
                freed += e.bytes;
            }
            keep
        });
        let dropped = (before - inner.map.len()) as u64;
        inner.resident_bytes -= freed;
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Removes and returns every relation-index entry for `relation` in
    /// database `db_tag`, regardless of epoch or delta sequence — the
    /// harvest step of warm-cache patching: the caller re-routes the delta
    /// tuples into each taken entry and republishes it under the new
    /// sequence. Taken entries count as invalidations (republication counts
    /// as insertion), so the net cache churn stays visible in the stats.
    /// Bag artifacts are left alone: their labels fold the relation
    /// versions, so stale bags simply stop matching and age out via LRU.
    pub fn take_indexes_for(
        &self,
        db_tag: u64,
        relation: &str,
    ) -> Vec<(IndexKey, Arc<RelationIndex>)> {
        let mut inner = self.lock_recovering();
        let mut taken = Vec::new();
        let mut freed = 0usize;
        inner.map.retain(|k, e| match (k, &e.artifact) {
            (EntryKey::Index(ik), Artifact::Index(idx))
                if ik.db_tag == db_tag && ik.relation == relation =>
            {
                freed += e.bytes;
                taken.push((ik.clone(), Arc::clone(idx)));
                false
            }
            _ => true,
        });
        inner.resident_bytes -= freed;
        self.invalidations.fetch_add(taken.len() as u64, Ordering::Relaxed);
        taken
    }

    /// Empties the cache.
    pub fn clear(&self) {
        let mut inner = self.lock_recovering();
        let dropped = inner.map.len() as u64;
        inner.map.clear();
        inner.resident_bytes = 0;
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Current resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.lock_recovering().resident_bytes
    }

    /// Current artifact count.
    pub fn len(&self) -> usize {
        self.lock_recovering().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> IndexCacheStats {
        let (resident_bytes, len) = {
            let inner = self.lock_recovering();
            (inner.resident_bytes, inner.map.len())
        };
        IndexCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            tuples_saved: self.tuples_saved.load(Ordering::Relaxed),
            coalesced_builds: self.coalesced.load(Ordering::Relaxed),
            resident_bytes,
            capacity_bytes: self.capacity_bytes,
            len,
        }
    }
}

/// The scope a cache is consulted under: which cache, and which database
/// state keys its entries. Threaded from the service front door down
/// through the executor into the shuffle.
#[derive(Debug, Clone, Copy)]
pub struct IndexScope<'a> {
    /// The shared cache.
    pub cache: &'a IndexCache,
    /// Stable tag of the database being queried.
    pub db_tag: u64,
    /// The database's current statistics epoch.
    pub epoch: u64,
    /// Per-relation delta sequences (`(name, seq)` pairs) of the database
    /// state being queried. Relations absent from the slice are at sequence
    /// 0 — an empty slice is the never-mutated database.
    pub versions: &'a [(String, u64)],
}

impl<'a> IndexScope<'a> {
    /// The delta sequence of `relation` in this scope (0 if never mutated).
    pub fn delta_seq_for(&self, relation: &str) -> u64 {
        self.versions.iter().find(|(n, _)| n == relation).map_or(0, |&(_, s)| s)
    }

    /// FNV-1a digest of the delta sequences of the given relations — folded
    /// into bag labels (and plan-cache keys at the service layer) so an
    /// artifact derived from several relations goes stale exactly when one
    /// of *them* mutates, not when any unrelated relation does.
    pub fn version_digest<'s>(&self, relations: impl IntoIterator<Item = &'s str>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for name in relations {
            for &b in name.as_bytes() {
                fold(b);
            }
            fold(0xff);
            for b in self.delta_seq_for(name).to_le_bytes() {
                fold(b);
            }
        }
        h
    }

    /// Builds an [`IndexKey`] in this scope, stamping the relation's current
    /// delta sequence.
    #[allow(clippy::too_many_arguments)]
    pub fn index_key(
        &self,
        relation: impl Into<String>,
        induced: Vec<Attr>,
        share: &[u32],
        num_workers: usize,
        route_tag: u64,
        bind_tag: u64,
    ) -> IndexKey {
        let relation = relation.into();
        let delta_seq = self.delta_seq_for(&relation);
        IndexKey {
            db_tag: self.db_tag,
            epoch: self.epoch,
            relation,
            induced,
            share: share.to_vec(),
            num_workers,
            route_tag,
            bind_tag,
            delta_seq,
        }
    }

    /// Builds a [`BagKey`] in this scope.
    pub fn bag_key(&self, label: impl Into<String>) -> BagKey {
        BagKey { db_tag: self.db_tag, epoch: self.epoch, label: label.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adj_relational::{Relation, Value};

    fn trie(n: u32) -> Arc<Trie> {
        let rows: Vec<(Value, Value)> = (0..n).map(|i| (i, i + 1)).collect();
        Arc::new(Trie::build(&Relation::from_pairs(Attr(0), Attr(1), &rows)))
    }

    fn key(tag: u64, epoch: u64, name: &str) -> IndexKey {
        IndexKey {
            db_tag: tag,
            epoch,
            relation: name.into(),
            induced: vec![Attr(0), Attr(1)],
            share: vec![2, 2],
            num_workers: 4,
            route_tag: 0,
            bind_tag: 0,
            delta_seq: 0,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = IndexCache::new(1 << 20);
        let k = key(1, 0, "R1");
        assert!(cache.get_index(&k).is_none());
        let idx = Arc::new(RelationIndex::new(vec![trie(10)], 10, 1));
        cache.insert_index(k.clone(), idx);
        let hit = cache.get_index(&k).expect("hit");
        assert_eq!(hit.tuples, 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.tuples_saved, 10);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn epoch_and_share_split_keys() {
        let cache = IndexCache::new(1 << 20);
        let k = key(1, 0, "R1");
        cache.insert_index(k.clone(), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        let mut stale = k.clone();
        stale.epoch = 1;
        assert!(cache.get_index(&stale).is_none(), "epoch bump must stop matching");
        let mut other_share = k.clone();
        other_share.share = vec![4, 1];
        assert!(cache.get_index(&other_share).is_none());
        let mut other_workers = k.clone();
        other_workers.num_workers = 8;
        assert!(cache.get_index(&other_workers).is_none());
        let mut other_route = k.clone();
        other_route.route_tag = 0xBEEF;
        assert!(
            cache.get_index(&other_route).is_none(),
            "skew-routed tries must not alias hash-routed ones"
        );
        let mut other_bind = k.clone();
        other_bind.bind_tag = 0xB0B | 1;
        assert!(
            cache.get_index(&other_bind).is_none(),
            "bound-level entries must not alias unbound ones"
        );
        let mut other_seq = k;
        other_seq.delta_seq = 3;
        assert!(
            cache.get_index(&other_seq).is_none(),
            "a mutated relation's entries must stop matching"
        );
    }

    #[test]
    fn take_indexes_for_harvests_one_relation() {
        let cache = IndexCache::new(1 << 20);
        cache.insert_index(key(1, 0, "R1"), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        let mut seq1 = key(1, 0, "R1");
        seq1.delta_seq = 1;
        cache.insert_index(seq1, Arc::new(RelationIndex::new(vec![trie(6)], 6, 1)));
        cache.insert_index(key(1, 0, "R2"), Arc::new(RelationIndex::new(vec![trie(7)], 7, 1)));
        cache.insert_index(key(2, 0, "R1"), Arc::new(RelationIndex::new(vec![trie(8)], 8, 1)));
        let taken = cache.take_indexes_for(1, "R1");
        assert_eq!(taken.len(), 2, "both sequences of db 1's R1 come out");
        assert_eq!(cache.len(), 2, "other relation and other db stay");
        assert!(cache.get_index(&key(1, 0, "R2")).is_some());
        assert!(cache.get_index(&key(2, 0, "R1")).is_some());
        assert_eq!(cache.stats().invalidations, 2);
        let resident = cache.resident_bytes();
        assert!(resident > 0, "freed bytes must be subtracted, not leaked");
    }

    #[test]
    fn scope_versions_stamp_keys_and_digests() {
        let cache = IndexCache::new(1 << 20);
        let versions = vec![("R1".to_string(), 4u64)];
        let scope = IndexScope { cache: &cache, db_tag: 7, epoch: 3, versions: &versions };
        assert_eq!(scope.delta_seq_for("R1"), 4);
        assert_eq!(scope.delta_seq_for("R2"), 0, "unmutated relations sit at 0");
        let k = scope.index_key("R1", vec![Attr(0)], &[2], 4, 0, 0);
        assert_eq!(k.delta_seq, 4);
        assert_eq!(scope.index_key("R2", vec![Attr(0)], &[2], 4, 0, 0).delta_seq, 0);
        let d1 = scope.version_digest(["R1", "R2"]);
        assert_ne!(d1, scope.version_digest(["R2"]), "member set changes the digest");
        let fresh = IndexScope { cache: &cache, db_tag: 7, epoch: 3, versions: &[] };
        assert_ne!(d1, fresh.version_digest(["R1", "R2"]), "sequence changes the digest");
        assert_eq!(
            scope.version_digest(["R2"]),
            fresh.version_digest(["R2"]),
            "digest over unmutated relations is stable"
        );
    }

    #[test]
    fn poisoned_lock_recovers_by_clearing_not_wedging() {
        // Regression: a panicking query used to poison the cache mutex and
        // every later query then panicked on `.expect("poisoned")` —
        // permanently wedging the service. Recovery drops the (suspect)
        // contents and keeps serving cold.
        let cache = Arc::new(IndexCache::new(1 << 20));
        cache.insert_index(key(1, 0, "R1"), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        assert_eq!(cache.len(), 1);
        let poisoner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.inner.lock().unwrap();
                panic!("query died while holding the cache lock");
            })
        };
        assert!(poisoner.join().is_err(), "the thread must actually panic");
        assert!(cache.inner.is_poisoned());
        // No panic on any operation; the cache restarts empty and works.
        assert!(cache.get_index(&key(1, 0, "R1")).is_none(), "suspect contents dropped");
        assert!(!cache.inner.is_poisoned(), "poison cleared on first recovery");
        assert_eq!(cache.len(), 0);
        cache.insert_index(key(1, 0, "R2"), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        assert!(cache.get_index(&key(1, 0, "R2")).is_some(), "cache keeps serving after recovery");
        assert_eq!(cache.stats().invalidations, 1, "dropped entries count as invalidations");
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let t = trie(50);
        let bytes = RelationIndex::new(vec![t.clone()], 0, 0).bytes;
        // Room for exactly two entries.
        let cache = IndexCache::new(bytes * 2 + 1);
        for (i, name) in ["a", "b"].iter().enumerate() {
            cache.insert_index(
                key(1, 0, name),
                Arc::new(RelationIndex::new(vec![t.clone()], i as u64, 0)),
            );
        }
        assert!(cache.get_index(&key(1, 0, "a")).is_some()); // refresh a → b is LRU
        cache.insert_index(key(1, 0, "c"), Arc::new(RelationIndex::new(vec![t.clone()], 2, 0)));
        assert!(cache.get_index(&key(1, 0, "b")).is_none(), "b was least recently used");
        assert!(cache.get_index(&key(1, 0, "a")).is_some());
        assert!(cache.get_index(&key(1, 0, "c")).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= s.capacity_bytes);
    }

    #[test]
    fn oversized_entry_is_not_cached() {
        let cache = IndexCache::new(8);
        cache.insert_index(key(1, 0, "big"), Arc::new(RelationIndex::new(vec![trie(100)], 0, 0)));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = IndexCache::new(0);
        let k = key(1, 0, "R1");
        cache.insert_index(k.clone(), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        assert!(cache.get_index(&k).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn bags_share_the_budget_and_roundtrip() {
        let cache = IndexCache::new(1 << 20);
        let rel = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (3, 4)]);
        let scope = IndexScope { cache: &cache, db_tag: 7, epoch: 3, versions: &[] };
        let bk = scope.bag_key("adj:R4,R5@[1,2,4]");
        assert!(cache.get_bag(&bk).is_none());
        cache.insert_bag(bk.clone(), Arc::new(rel.clone()));
        assert_eq!(*cache.get_bag(&bk).unwrap(), rel);
        assert!(cache.resident_bytes() >= rel.size_bytes());
        // different epoch: distinct bag
        let stale = BagKey { epoch: 4, ..bk };
        assert!(cache.get_bag(&stale).is_none());
    }

    #[test]
    fn invalidate_is_scoped_to_one_database() {
        let cache = IndexCache::new(1 << 20);
        cache.insert_index(key(100, 0, "R1"), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        cache.insert_bag(
            BagKey { db_tag: 100, epoch: 0, label: "adj:x".into() },
            Arc::new(Relation::from_pairs(Attr(0), Attr(1), &[(1, 2)])),
        );
        cache.insert_index(key(200, 0, "R1"), Arc::new(RelationIndex::new(vec![trie(5)], 5, 1)));
        cache.invalidate_db(100);
        assert_eq!(cache.len(), 1, "only db 100's artifacts drop");
        assert!(cache.get_index(&key(200, 0, "R1")).is_some());
        assert_eq!(cache.stats().invalidations, 2);
        let expected: usize = cache.stats().resident_bytes;
        assert!(expected > 0);
    }

    #[test]
    fn coalesced_miss_waits_for_one_build() {
        // N threads race a cold key: exactly one gets a claim and builds;
        // the rest block on it and come back as coalesced hits.
        const THREADS: usize = 8;
        let cache = Arc::new(IndexCache::new(1 << 20));
        let k = key(1, 0, "R1");
        let built = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let cache = Arc::clone(&cache);
                let built = Arc::clone(&built);
                let k = k.clone();
                s.spawn(move || match cache.get_index_or_claim(&k, &CancelToken::none()) {
                    CacheLookup::Miss(Some(claim)) => {
                        built.fetch_add(1, Ordering::Relaxed);
                        // Simulate a build long enough for every other
                        // thread to arrive and block.
                        std::thread::sleep(Duration::from_millis(20));
                        claim.publish_index(Arc::new(RelationIndex::new(vec![trie(10)], 10, 1)));
                    }
                    CacheLookup::Miss(None) => panic!("coalescing must engage"),
                    CacheLookup::Hit { .. } => {}
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1, "exactly one thread builds");
        let s = cache.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.misses, 1, "waiters resolve as hits, not misses");
        assert_eq!(s.hits, (THREADS - 1) as u64);
        assert_eq!(s.coalesced_builds, (THREADS - 1) as u64);
    }

    #[test]
    fn abandoned_claim_wakes_waiters_who_reclaim() {
        let cache = Arc::new(IndexCache::new(1 << 20));
        let k = key(1, 0, "R1");
        let claim = match cache.get_index_or_claim(&k, &CancelToken::none()) {
            CacheLookup::Miss(Some(c)) => c,
            _ => panic!("cold key must hand out a claim"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            std::thread::spawn(move || {
                match cache.get_index_or_claim(&k, &CancelToken::none()) {
                    CacheLookup::Miss(Some(claim)) => {
                        // The waiter inherits the build; publishing serves
                        // later lookups normally.
                        claim.publish_index(Arc::new(RelationIndex::new(vec![trie(4)], 4, 1)));
                        true
                    }
                    _ => false,
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(claim); // build failed — abandon without publishing
        assert!(
            waiter.join().expect("waiter must not hang"),
            "waiter should reclaim the abandoned key"
        );
        assert!(cache.get_index(&k).is_some());
        assert_eq!(cache.stats().coalesced_builds, 0, "an abandoned wait is not a coalesced hit");
    }

    #[test]
    fn cancelled_waiter_stops_blocking() {
        let cache = Arc::new(IndexCache::new(1 << 20));
        let k = key(1, 0, "R1");
        let _claim = match cache.get_index_or_claim(&k, &CancelToken::none()) {
            CacheLookup::Miss(Some(c)) => c,
            _ => panic!("cold key must hand out a claim"),
        };
        let cancel = CancelToken::manual();
        cancel.cancel();
        // The build never finishes, but the cancelled waiter returns
        // promptly with a claimless miss instead of hanging.
        match cache.get_index_or_claim(&k, &cancel) {
            CacheLookup::Miss(None) => {}
            other => panic!("cancelled wait must give up coalescing, got {other:?}"),
        };
    }

    #[test]
    fn zero_capacity_never_claims() {
        let cache = IndexCache::new(0);
        match cache.get_index_or_claim(&key(1, 0, "R1"), &CancelToken::none()) {
            CacheLookup::Miss(None) => {}
            other => panic!("disabled cache must not coalesce, got {other:?}"),
        };
    }

    #[test]
    fn bag_claims_roundtrip() {
        let cache = IndexCache::new(1 << 20);
        let scope = IndexScope { cache: &cache, db_tag: 7, epoch: 3, versions: &[] };
        let bk = scope.bag_key("adj:R4,R5@[1,2,4]");
        let rel = Arc::new(Relation::from_pairs(Attr(0), Attr(1), &[(1, 2)]));
        match cache.get_bag_or_claim(&bk, &CancelToken::none()) {
            CacheLookup::Miss(Some(claim)) => claim.publish_bag(Arc::clone(&rel)),
            other => panic!("cold bag must hand out a claim, got {other:?}"),
        }
        match cache.get_bag_or_claim(&bk, &CancelToken::none()) {
            CacheLookup::Hit { value, coalesced } => {
                assert_eq!(*value, *rel);
                assert!(!coalesced, "an uncontended hit is not coalesced");
            }
            other => panic!("published bag must hit, got {other:?}"),
        };
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(IndexCache::new(1 << 20));
        let idx = Arc::new(RelationIndex::new(vec![trie(10)], 10, 1));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                let idx = Arc::clone(&idx);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let k = key(t, 0, &format!("R{}", (t * 100 + i) % 12));
                        if cache.get_index(&k).is_none() {
                            cache.insert_index(k, Arc::clone(&idx));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.resident_bytes <= s.capacity_bytes);
    }
}
