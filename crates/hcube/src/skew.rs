//! Heavy-hitter routing for the HCube shuffle.
//!
//! Plain HCube hashing sends every tuple carrying a hot join value to the
//! *same* coordinate of that value's dimension — the whole heavy hitter
//! lands on one hypercube slice, which is both a load cliff and a memory
//! hazard. The routing table here fixes that with the classic partial
//! redistribution trade (PRPD-style), adapted to the hypercube:
//!
//! * per attribute `A` with detected hot values, exactly one participating
//!   relation — the largest one containing `A`, the **spreader** — routes
//!   its hot tuples by a content hash of the whole tuple, *spreading* them
//!   evenly across the `p_A` coordinates instead of pinning them to
//!   `h_A(v)`;
//! * every other participating relation containing `A` *broadcasts* its
//!   hot tuples across the dimension (coordinate `⋆`), so the spread
//!   fragments still meet every joining tuple;
//! * non-hot values hash exactly as before.
//!
//! **Duplicate elimination.** Broadcasting replicates tuples, so the same
//! output binding could in principle be produced on every coordinate of the
//! dimension. The rule that keeps results byte-identical is *spreader
//! ownership*: for a binding whose value on `A` is hot, only the coordinate
//! holding the spreader's (unreplicated) tuple can produce it — every other
//! coordinate lacks that tuple, so the probe side emits each binding
//! exactly once, with no post-hoc dedup pass. This requires the cube→worker
//! map to be a bijection (`Π p_A = N*`); the executor enforces that when a
//! routing table is active and falls back to plain hashing when no such
//! share vector is feasible.

use adj_relational::hash::{hash_row, FxHasher};
use adj_relational::{Attr, Value};
use std::hash::Hasher;

/// Per-attribute hot-value sets — the query-level half of the routing
/// table, derived from the sampling skew profile at plan time. Index =
/// attribute id; each list is sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotValues {
    per_attr: Vec<Vec<Value>>,
}

impl HotValues {
    /// Builds the table from per-attribute hot-value lists (index =
    /// attribute id). Lists are sorted and deduplicated.
    pub fn new(mut per_attr: Vec<Vec<Value>>) -> Self {
        for list in &mut per_attr {
            list.sort_unstable();
            list.dedup();
        }
        HotValues { per_attr }
    }

    /// An empty table (plain hashing everywhere).
    pub fn none() -> Self {
        HotValues::default()
    }

    /// Whether no value is hot anywhere.
    pub fn is_empty(&self) -> bool {
        self.per_attr.iter().all(|v| v.is_empty())
    }

    /// Number of `(attribute, value)` entries.
    pub fn len(&self) -> usize {
        self.per_attr.iter().map(|v| v.len()).sum()
    }

    /// The hot values of `attr` (empty when none).
    pub fn values(&self, attr: Attr) -> &[Value] {
        self.per_attr.get(attr.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Bitmask of attributes carrying at least one hot value — lets callers
    /// check whether a given relation set is touched by the table at all.
    pub fn attrs_mask(&self) -> u64 {
        self.per_attr
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .fold(0u64, |m, (a, _)| m | (1u64 << a))
    }

    /// Whether `value` is hot on `attr`.
    #[inline]
    pub fn is_hot(&self, attr: Attr, value: Value) -> bool {
        self.per_attr.get(attr.index()).is_some_and(|v| v.binary_search(&value).is_ok())
    }

    /// A stable fingerprint of the table contents (0 for the empty table),
    /// folded into index-cache keys so skew-routed tries never collide with
    /// hash-routed ones.
    pub fn fingerprint(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut h = FxHasher::default();
        for (attr, values) in self.per_attr.iter().enumerate() {
            if values.is_empty() {
                continue;
            }
            h.write_u64(attr as u64 + 1);
            for &v in values {
                h.write_u32(v);
            }
        }
        h.finish() | 1 // never 0, so "routed" and "unrouted" keys differ
    }
}

/// The routing decision for one (attribute, tuple) pair of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotDecision {
    /// This relation is the dimension's spreader: route by a content hash
    /// of the whole tuple.
    Spread,
    /// Another relation spreads this dimension: replicate across it.
    Broadcast,
}

/// A routing table bound to one concrete shuffle: the hot values plus, per
/// attribute, which participating atom (by index into the shuffle's atom
/// list) spreads that dimension. Built by the shuffle itself so the
/// spreader is always one of the relations actually being moved.
#[derive(Debug, Clone, Default)]
pub struct ShuffleRouting {
    hot: HotValues,
    /// `spreader[attr_id]` = index of the spreading atom, if any relation
    /// in this shuffle contains the attribute.
    spreader: Vec<Option<usize>>,
    /// Attribute masks of the shuffle's atoms — a decision only exists for
    /// an atom's own attributes.
    masks: Vec<u64>,
}

impl ShuffleRouting {
    /// Binds `hot` to a shuffle's atom list. `atoms[i]` is
    /// `(attribute mask, tuple count)` of the `i`-th shuffled relation; per
    /// hot attribute the largest relation containing it (ties to the lowest
    /// atom index) becomes the spreader.
    pub fn bind(hot: &HotValues, atoms: &[(u64, usize)]) -> Self {
        if hot.is_empty() {
            return ShuffleRouting::default();
        }
        let n_attrs = hot.per_attr.len();
        let mut spreader = vec![None; n_attrs];
        for (attr, values) in hot.per_attr.iter().enumerate() {
            if values.is_empty() {
                continue;
            }
            spreader[attr] = atoms
                .iter()
                .enumerate()
                .filter(|(_, &(mask, _))| mask & (1u64 << attr) != 0)
                .max_by(|(ai, &(_, a)), (bi, &(_, b))| a.cmp(&b).then(bi.cmp(ai)))
                .map(|(i, _)| i);
        }
        ShuffleRouting {
            hot: hot.clone(),
            spreader,
            masks: atoms.iter().map(|&(mask, _)| mask).collect(),
        }
    }

    /// Whether the table routes anything.
    pub fn is_active(&self) -> bool {
        !self.hot.is_empty() && self.spreader.iter().any(|s| s.is_some())
    }

    /// The bound hot values.
    pub fn hot(&self) -> &HotValues {
        &self.hot
    }

    /// The routing decision for atom `ai`'s tuples on `attr` carrying
    /// `value`; `None` means plain hashing (including for attributes the
    /// atom does not contain).
    #[inline]
    pub fn decision(&self, ai: usize, attr: Attr, value: Value) -> Option<HotDecision> {
        if self.masks.get(ai).is_none_or(|m| m & (1u64 << attr.index()) == 0)
            || !self.hot.is_hot(attr, value)
        {
            return None;
        }
        match self.spreader.get(attr.index()).copied().flatten() {
            Some(s) if s == ai => Some(HotDecision::Spread),
            Some(_) => Some(HotDecision::Broadcast),
            // No shuffled relation contains the attribute: its dimension is
            // free for everyone anyway.
            None => None,
        }
    }

    /// The cache-key tag of atom `ai`'s shuffled fragments. An atom's
    /// fragments depend only on the hot values of its *own* attributes and
    /// its spread-vs-broadcast role on each, so exactly that is folded: a
    /// relation shuffled as spreader never aliases the same relation
    /// shuffled as broadcaster, while an atom containing no hot attribute
    /// keeps tag 0 — its fragments are byte-identical to the unrouted ones,
    /// and the plain cache entry is safely reused.
    pub fn atom_tag(&self, ai: usize) -> u64 {
        if !self.is_active() {
            return 0;
        }
        let Some(&mask) = self.masks.get(ai) else { return 0 };
        let mut h = FxHasher::default();
        let mut routed = false;
        for (attr, values) in self.hot.per_attr.iter().enumerate() {
            if values.is_empty() || mask & (1u64 << attr) == 0 {
                continue;
            }
            let Some(s) = self.spreader[attr] else { continue };
            routed = true;
            h.write_u64(((attr as u64) << 2) | if s == ai { 1 } else { 2 });
            for &v in values {
                h.write_u32(v);
            }
        }
        if !routed {
            return 0;
        }
        h.finish() | 1
    }
}

/// The content hash that spreads a hot tuple across its dimension: a
/// per-attribute-salted hash of the whole tuple
/// ([`adj_relational::hash::hash_row`]), reduced to `[p]`. Both the Push
/// and the Pull/Merge paths call this on the *induced* (permuted) row, so
/// all implementations route identically.
#[inline]
pub fn spread_coord(attr: Attr, row: &[Value], p: u32) -> u32 {
    if p <= 1 {
        return 0;
    }
    (hash_row(attr.0, row) % p as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_ab() -> HotValues {
        HotValues::new(vec![vec![7, 3, 7], vec![], vec![11]])
    }

    #[test]
    fn membership_and_normalization() {
        let h = hot_ab();
        assert!(!h.is_empty());
        assert_eq!(h.len(), 3, "duplicates collapse");
        assert_eq!(h.values(Attr(0)), &[3, 7]);
        assert!(h.is_hot(Attr(0), 7));
        assert!(!h.is_hot(Attr(0), 8));
        assert!(!h.is_hot(Attr(1), 7));
        assert!(h.is_hot(Attr(2), 11));
        assert!(!h.is_hot(Attr(9), 11), "out-of-range attrs are never hot");
    }

    #[test]
    fn fingerprints_distinguish_tables() {
        assert_eq!(HotValues::none().fingerprint(), 0);
        let a = hot_ab().fingerprint();
        let b = HotValues::new(vec![vec![3], vec![], vec![11]]).fingerprint();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(a, hot_ab().fingerprint(), "stable across builds");
    }

    #[test]
    fn spreader_is_the_largest_containing_relation() {
        let hot = HotValues::new(vec![vec![1], vec![2], vec![]]);
        // atoms: R0(a,b) small, R1(b,c) big, R2(a,c) medium
        let atoms = [(0b011u64, 10), (0b110, 100), (0b101, 50)];
        let r = ShuffleRouting::bind(&hot, &atoms);
        assert!(r.is_active());
        // attr a hot: contained in R0 (10) and R2 (50) → R2 spreads.
        assert_eq!(r.decision(2, Attr(0), 1), Some(HotDecision::Spread));
        assert_eq!(r.decision(0, Attr(0), 1), Some(HotDecision::Broadcast));
        assert_eq!(r.decision(1, Attr(0), 1), None, "R1 does not contain a");
        // attr b hot: R1 is largest.
        assert_eq!(r.decision(1, Attr(1), 2), Some(HotDecision::Spread));
        assert_eq!(r.decision(0, Attr(1), 2), Some(HotDecision::Broadcast));
        // non-hot values hash plainly.
        assert_eq!(r.decision(2, Attr(0), 99), None);
        // per-atom cache tags split spreader from broadcaster roles.
        assert_ne!(r.atom_tag(0), r.atom_tag(2));
        assert_ne!(r.atom_tag(0), 0);
    }

    #[test]
    fn untouched_atoms_keep_tag_zero_under_active_routing() {
        // Only attr a is hot; R1(b,c) contains no hot attribute, so its
        // fragments are byte-identical to an unrouted shuffle's and must
        // alias the plain cache entry (tag 0).
        let hot = HotValues::new(vec![vec![1], vec![], vec![]]);
        let atoms = [(0b011u64, 10), (0b110, 100), (0b101, 50)];
        let r = ShuffleRouting::bind(&hot, &atoms);
        assert!(r.is_active());
        assert_eq!(r.atom_tag(1), 0, "no hot attr in R1(b,c) → plain identity");
        assert_ne!(r.atom_tag(0), 0);
        assert_ne!(r.atom_tag(2), 0);
    }

    #[test]
    fn size_ties_pick_the_lowest_atom_index() {
        let hot = HotValues::new(vec![vec![1]]);
        let atoms = [(0b1u64, 10), (0b1, 10)];
        let r = ShuffleRouting::bind(&hot, &atoms);
        assert_eq!(r.decision(0, Attr(0), 1), Some(HotDecision::Spread));
        assert_eq!(r.decision(1, Attr(0), 1), Some(HotDecision::Broadcast));
    }

    #[test]
    fn empty_table_is_inert() {
        let r = ShuffleRouting::bind(&HotValues::none(), &[(0b11, 10)]);
        assert!(!r.is_active());
        assert_eq!(r.decision(0, Attr(0), 1), None);
        assert_eq!(r.atom_tag(0), 0);
    }

    #[test]
    fn spread_coord_is_deterministic_and_in_range() {
        let row = [5u32, 9, 1];
        for p in [1u32, 2, 3, 8] {
            let c = spread_coord(Attr(1), &row, p);
            assert!(c < p.max(1));
            assert_eq!(c, spread_coord(Attr(1), &row, p));
        }
        // different attrs decorrelate
        let spread: Vec<u32> = (0..64u32).map(|i| spread_coord(Attr(0), &[i, 2 * i], 4)).collect();
        let distinct: std::collections::HashSet<_> = spread.iter().collect();
        assert!(distinct.len() > 1, "content hash must actually spread");
    }
}
