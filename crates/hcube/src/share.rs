//! The HCube share optimizer (optimization program (3), Sec. III-B).
//!
//! Minimize `costC(p) = Σ_R |R| · dup(R, p)` where
//! `dup(R, p) = Π_{A ∉ attrs(R)} p_A`, subject to:
//!
//! 1. `p_A ≥ 1` for all attributes;
//! 2. on average a worker's received data fits in memory:
//!    `Σ_R size(R) · frac(R, p) ≤ M` with `frac(R,p) = 1 / Π_{A ∈ R} p_A`
//!    (per hypercube; multiplied by cubes-per-worker when `P > N*`);
//! 3. `Π p_A ≥ N*` so every worker is assigned at least one hypercube
//!    (the classical HCube setting; the paper notes `P` may exceed `N*`).
//!
//! With ≤ 5 attributes and `N* ≤ 64` the feasible lattice is tiny, so we
//! solve the program by exact enumeration rather than the paper's numeric
//! solver — same optimum, and deterministic.
//!
//! **Skew.** The paper's objective charges *total* load, which silently
//! assumes hashing spreads every relation evenly. One heavy-hitter join
//! value concentrates its whole hash class on a single coordinate, so the
//! optimizer here ranks share vectors by the estimated **fullest-partition
//! load** first (computed from the per-relation heavy-hitter fractions in
//! [`ShareInput::hot`]) and by total load second. Under uniform inputs the
//! fullest partition is `total / N*` and the ranking degenerates to the
//! paper's — the skew term only changes decisions when skew exists.

use adj_relational::{Error, Result};

/// Input description for the share optimizer.
#[derive(Debug, Clone)]
pub struct ShareInput {
    /// Number of query attributes `n` (attribute ids `0..n`).
    pub num_attrs: usize,
    /// `(attribute mask, tuple count)` per relation to be shuffled.
    pub relations: Vec<(u64, usize)>,
    /// Number of workers `N*`.
    pub num_workers: usize,
    /// Per-worker memory budget in bytes (`M`); `None` = unconstrained.
    pub memory_limit_bytes: Option<usize>,
    /// Bytes per tuple value (4 for our `u32` values).
    pub bytes_per_value: usize,
    /// Heavy-hitter fractions, aligned with `relations`: per relation, a
    /// list of `(attribute id, largest hot-value fraction of that column)`.
    /// Empty (or shorter than `relations`) means "assume uniform" — the
    /// exact pre-skew behaviour.
    pub hot: Vec<Vec<(u32, f64)>>,
    /// Require `Π p_A = N*` exactly (a bijective cube→worker map) — the
    /// precondition of heavy-hitter routing's spreader-ownership dedup
    /// rule. When no such vector satisfies the memory budget the optimizer
    /// errors, and callers fall back to plain hashing.
    pub require_exact_product: bool,
    /// Attributes fully bound to constants by a prepared-query binding.
    /// A bound dimension holds exactly one value after the shuffle's
    /// selection pushdown, so partitioning it is pure duplication: these
    /// attributes are dropped from the dimension grid (pinned to share 1)
    /// and the enumeration ranks only the free attributes' vectors. When
    /// *every* attribute is bound the product requirement relaxes to 1 —
    /// the single surviving cube is the whole answer.
    pub bound_mask: u64,
}

impl ShareInput {
    /// Communication cost `Σ_R |R| · dup(R, p)` in delivered tuple copies.
    pub fn comm_cost(&self, p: &[u32]) -> u64 {
        self.relations.iter().map(|&(mask, size)| size as u64 * dup_factor(p, mask)).sum()
    }

    /// Expected bytes received per hypercube under `p` — the paper's memory
    /// constraint term `Σ_R size(R) · frac(R, p)` (program (3)), which
    /// treats one hypercube per server (`P ≈ N*`).
    pub fn per_worker_bytes(&self, p: &[u32]) -> f64 {
        self.relations
            .iter()
            .map(|&(mask, size)| {
                let arity = mask.count_ones() as usize;
                let bytes = (size * arity * self.bytes_per_value) as f64;
                bytes * frac(p, mask)
            })
            .sum()
    }

    /// Estimated tuple load of the *fullest* hypercube under `p` and plain
    /// hashing. Per relation, the worst coordinate of a partitioned
    /// attribute `A` receives its hottest value (fraction `f`) plus a
    /// `1/p_A` share of the rest, so the worst-cube fraction is
    /// `Π_{A ∈ R} (f_A + (1 − f_A)/p_A)`; with no skew information this is
    /// exactly `frac(R, p)`, and summing over relations upper-bounds any
    /// single cube's inbox.
    pub fn max_cube_tuples(&self, p: &[u32]) -> f64 {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, &(mask, size))| {
                let mut worst = 1.0f64;
                for (a, &pa) in p.iter().enumerate() {
                    if mask & (1u64 << a) == 0 || pa <= 1 {
                        continue;
                    }
                    let f = self
                        .hot
                        .get(i)
                        .and_then(|cols| {
                            cols.iter().find(|&&(attr, _)| attr as usize == a).map(|&(_, f)| f)
                        })
                        .unwrap_or(0.0)
                        .clamp(0.0, 1.0);
                    worst *= f + (1.0 - f) / pa as f64;
                }
                size as f64 * worst
            })
            .sum()
    }

    /// The ranking load of a share vector: the larger of the average
    /// per-worker load (`total / N*`) and the estimated fullest-partition
    /// load — i.e. the makespan of the shuffle, which is what a latency
    /// objective must charge. Uniform inputs make the two coincide up to
    /// rounding, reproducing the paper's pure-total ranking.
    pub fn makespan_load(&self, p: &[u32]) -> u64 {
        let avg = self.comm_cost(p) as f64 / self.num_workers as f64;
        avg.max(self.max_cube_tuples(p)).ceil() as u64
    }
}

/// `dup(R, p) = Π_{A ∉ attrs(R)} p_A` — how many hypercubes receive each
/// tuple of `R`.
pub fn dup_factor(p: &[u32], rel_mask: u64) -> u64 {
    p.iter().enumerate().filter(|(i, _)| rel_mask & (1 << i) == 0).map(|(_, &x)| x as u64).product()
}

/// `frac(R, p) = 1 / Π_{A ∈ attrs(R)} p_A` — fraction of `R` received per
/// hypercube.
pub fn frac(p: &[u32], rel_mask: u64) -> f64 {
    let denom: u64 = p
        .iter()
        .enumerate()
        .filter(|(i, _)| rel_mask & (1 << i) != 0)
        .map(|(_, &x)| x as u64)
        .product();
    1.0 / denom as f64
}

/// Solves the share optimization program exactly. Returns the optimal share
/// vector (indexed by attribute id), or an error if no feasible vector
/// exists within the enumeration cap (memory budget too small).
pub fn optimize_share(input: &ShareInput) -> Result<Vec<u32>> {
    let n = input.num_attrs;
    assert!((1..=16).contains(&n), "share enumeration sized for small queries");
    let nw = input.num_workers as u64;
    // Enumerate products up to cap; comm cost is monotone in every p_A, so
    // the optimum has a small product, but the memory constraint can force
    // finer partitioning — cap at 8·N* (plenty for the workloads here).
    let cap = if input.require_exact_product { nw.max(1) } else { (8 * nw).max(64) };
    // A fully-bound query has no free dimension left: the single cube is
    // legal (one worker computes the one-point answer).
    let any_free = (0..n).any(|i| input.bound_mask & (1 << i) == 0);
    let needed = if any_free { nw } else { 1 };
    // Rank by (makespan load, total load, product, p): the fullest
    // partition decides wall-clock, total load breaks ties (and equals the
    // old objective on uniform inputs), product and the vector itself make
    // the choice deterministic.
    let mut best: Option<(u64, u64, u64, Vec<u32>)> = None;

    let mut p = vec![1u32; n];
    enumerate(&mut p, 0, 1, cap, input.bound_mask, &mut |p, product| {
        if product < needed || (input.require_exact_product && product != needed) {
            return;
        }
        if let Some(limit) = input.memory_limit_bytes {
            if input.per_worker_bytes(p) > limit as f64 {
                return;
            }
        }
        let key = (input.makespan_load(p), input.comm_cost(p), product, p.to_vec());
        if best.as_ref().is_none_or(|b| key < *b) {
            best = Some(key);
        }
    });

    best.map(|(_, _, _, p)| p).ok_or(Error::BudgetExceeded {
        what: "no feasible HCube share vector under memory budget",
        limit: input.memory_limit_bytes.unwrap_or(0),
    })
}

fn enumerate(
    p: &mut Vec<u32>,
    idx: usize,
    product: u64,
    cap: u64,
    bound_mask: u64,
    visit: &mut impl FnMut(&[u32], u64),
) {
    if idx == p.len() {
        visit(p, product);
        return;
    }
    if bound_mask & (1 << idx) != 0 {
        // Bound attribute: dropped from the dimension grid, share pinned 1.
        p[idx] = 1;
        enumerate(p, idx + 1, product, cap, bound_mask, visit);
        return;
    }
    let mut v = 1u64;
    while product * v <= cap {
        p[idx] = v as u32;
        enumerate(p, idx + 1, product * v, cap, bound_mask, visit);
        v += 1;
    }
    p[idx] = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle query R1(a,b), R2(b,c), R3(a,c), equal sizes.
    fn triangle(size: usize, workers: usize) -> ShareInput {
        ShareInput {
            num_attrs: 3,
            relations: vec![(0b011, size), (0b110, size), (0b101, size)],
            num_workers: workers,
            memory_limit_bytes: None,
            bytes_per_value: 4,
            hot: Vec::new(),
            require_exact_product: false,
            bound_mask: 0,
        }
    }

    #[test]
    fn dup_and_frac() {
        let p = [2, 3, 4];
        // R(a,b): dup = p_c = 4; frac = 1/(2*3)
        assert_eq!(dup_factor(&p, 0b011), 4);
        assert!((frac(&p, 0b011) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(dup_factor(&p, 0b111), 1);
    }

    #[test]
    fn triangle_share_is_balanced() {
        // Classic result: for the symmetric triangle on P = 8 cubes the
        // optimal share is (2,2,2) — each relation duplicated 2×, total
        // cost 3·2·|R| = 6|R|, beating e.g. (8,1,1) with cost (1+8+8)|R|.
        let input = triangle(1000, 8);
        let p = optimize_share(&input).unwrap();
        assert_eq!(p, vec![2, 2, 2]);
        assert_eq!(input.comm_cost(&p), 6000);
    }

    #[test]
    fn single_worker_needs_no_partitioning() {
        let input = triangle(1000, 1);
        let p = optimize_share(&input).unwrap();
        assert_eq!(p, vec![1, 1, 1]);
        assert_eq!(input.comm_cost(&p), 3000);
    }

    #[test]
    fn skewed_sizes_partition_the_small_relations_attrs() {
        // If R3(a,c) is huge, duplicating it is expensive, so its attributes
        // get the partitions: p_b should stay 1 only if that avoids
        // duplicating R3... concretely the optimizer must beat the naive
        // (2,2,2).
        let input = ShareInput {
            num_attrs: 3,
            relations: vec![(0b011, 100), (0b110, 100), (0b101, 100_000)],
            num_workers: 8,
            memory_limit_bytes: None,
            bytes_per_value: 4,
            hot: Vec::new(),
            require_exact_product: false,
            bound_mask: 0,
        };
        let p = optimize_share(&input).unwrap();
        // dup(R3) = p_b must be 1
        assert_eq!(p[1], 1, "p={p:?}");
        assert!(input.comm_cost(&p) < input.comm_cost(&[2, 2, 2]));
    }

    #[test]
    fn memory_constraint_forces_finer_shares() {
        let size = 10_000usize;
        let unconstrained = triangle(size, 4);
        let p0 = optimize_share(&unconstrained).unwrap();
        // Tight memory: 240KB of input over 4 workers means ≥60KB/worker is
        // unavoidable; 70KB forces finer shares than the comm-optimal ones.
        let mut constrained = triangle(size, 4);
        constrained.memory_limit_bytes = Some(70_000);
        let p1 = optimize_share(&constrained).unwrap();
        assert!(constrained.per_worker_bytes(&p1) <= 70_000.0);
        let prod0: u64 = p0.iter().map(|&x| x as u64).product();
        let prod1: u64 = p1.iter().map(|&x| x as u64).product();
        assert!(prod1 >= prod0, "memory pressure should not coarsen shares");
    }

    #[test]
    fn infeasible_budget_errors() {
        let mut input = triangle(1_000_000, 2);
        input.memory_limit_bytes = Some(16); // absurd
        assert!(optimize_share(&input).is_err());
    }

    #[test]
    fn uniform_makespan_matches_average_load() {
        let input = triangle(1000, 8);
        let p = optimize_share(&input).unwrap();
        let avg = input.comm_cost(&p) as f64 / 8.0;
        assert!((input.max_cube_tuples(&p) - avg).abs() < 1e-6, "uniform → balanced cubes");
        assert_eq!(input.makespan_load(&p), avg.ceil() as u64);
    }

    #[test]
    fn hot_fraction_shifts_partitioning_off_the_skewed_attribute() {
        // Two relations joining on b, sizes equal; b's column of R1 is 60%
        // one value. The pure-total objective puts every partition on b
        // (duplication-free); the max-partition term sees that a p_b-way
        // split of R1 still leaves 60% on one coordinate and moves (part
        // of) the sharing onto a/c instead.
        let uniform = ShareInput {
            num_attrs: 3,
            relations: vec![(0b011, 10_000), (0b110, 10_000)],
            num_workers: 8,
            memory_limit_bytes: None,
            bytes_per_value: 4,
            hot: Vec::new(),
            require_exact_product: false,
            bound_mask: 0,
        };
        let p_uniform = optimize_share(&uniform).unwrap();
        assert_eq!(p_uniform, vec![1, 8, 1], "total-load optimum shares only on b");

        let mut skewed = uniform.clone();
        skewed.hot = vec![vec![(1, 0.6)], vec![(1, 0.6)]];
        let p_skewed = optimize_share(&skewed).unwrap();
        assert!(p_skewed[0] > 1 || p_skewed[2] > 1, "skew must move shares off b: {p_skewed:?}");
        assert!(
            skewed.makespan_load(&p_skewed) < skewed.makespan_load(&[1, 8, 1]),
            "chosen share must beat the naive one on the fullest partition"
        );
    }

    #[test]
    fn exact_product_constraint_is_honoured() {
        for workers in [1usize, 4, 6, 7] {
            let mut input = triangle(500, workers);
            input.require_exact_product = true;
            let p = optimize_share(&input).unwrap();
            let prod: u64 = p.iter().map(|&x| x as u64).product();
            assert_eq!(prod, workers as u64, "p={p:?}");
        }
        // Exact product + impossible memory → error, not a silent fallback.
        let mut input = triangle(1_000_000, 4);
        input.require_exact_product = true;
        input.memory_limit_bytes = Some(16);
        assert!(optimize_share(&input).is_err());
    }

    #[test]
    fn bound_attributes_drop_out_of_the_dimension_grid() {
        // Triangle with a bound: the optimum must pin p_a = 1 and reach
        // N* = 8 over b, c alone.
        let mut input = triangle(1000, 8);
        input.bound_mask = 0b001;
        let p = optimize_share(&input).unwrap();
        assert_eq!(p[0], 1, "bound attr must not be partitioned: {p:?}");
        let prod: u64 = p.iter().map(|&x| x as u64).product();
        assert!(prod >= 8);

        // Two bound attrs: all sharing lands on the last free one.
        input.bound_mask = 0b011;
        let p = optimize_share(&input).unwrap();
        assert_eq!(&p[..2], &[1, 1], "p={p:?}");
        assert_eq!(p[2], 8);

        // Fully bound: a single cube is legal (one worker answers the
        // one-point query) instead of an infeasibility error.
        input.bound_mask = 0b111;
        let p = optimize_share(&input).unwrap();
        assert_eq!(p, vec![1, 1, 1]);

        // Exact product composes: free attrs must multiply to N* exactly.
        let mut exact = triangle(500, 4);
        exact.require_exact_product = true;
        exact.bound_mask = 0b001;
        let p = optimize_share(&exact).unwrap();
        assert_eq!(p[0], 1);
        assert_eq!(p.iter().map(|&x| x as u64).product::<u64>(), 4);
    }

    #[test]
    fn product_at_least_workers() {
        for workers in [1usize, 3, 4, 7, 13, 28] {
            let p = optimize_share(&triangle(100, workers)).unwrap();
            let prod: u64 = p.iter().map(|&x| x as u64).product();
            assert!(prod >= workers as u64, "workers={workers} p={p:?}");
        }
    }
}
