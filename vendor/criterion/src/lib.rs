//! Offline stand-in for the `criterion` benchmark harness, covering the API
//! surface the workspace's benches use: `Criterion::default().sample_size`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment cannot fetch the real crate, and the benches only
//! need wall-clock medians printed to stdout — no HTML reports or
//! statistical regression machinery. Timings are reported as
//! `<name>  median <t>  mean <t>  (<n> samples)`.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state (a stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        run_benchmark(&name.into(), n, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`] with
/// the code under test.
pub struct Bencher {
    samples: Vec<f64>,
    iterations_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation of `iter`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let t0 = Instant::now();
        for _ in 0..self.iterations_per_sample {
            black_box(routine());
        }
        self.samples.push(t0.elapsed().as_secs_f64() / self.iterations_per_sample as f64);
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed run so lazy setup and cold caches don't pollute
    // the first sample.
    let mut warm = Bencher { samples: Vec::new(), iterations_per_sample: 1 };
    f(&mut warm);

    let mut b = Bencher { samples: Vec::with_capacity(sample_size), iterations_per_sample: 1 };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut s = b.samples;
    if s.is_empty() {
        println!("{name:<48} (no samples — closure never called iter)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "{name:<48} median {}  mean {}  ({} samples)",
        fmt_secs(median),
        fmt_secs(mean),
        s.len()
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>9.3} s")
    } else if s >= 1e-3 {
        format!("{:>9.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>9.3} µs", s * 1e6)
    } else {
        format!("{:>9.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.sample_size(1);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn fmt_secs_picks_unit() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with("ms"));
        assert!(fmt_secs(2e-6).ends_with("µs"));
        assert!(fmt_secs(2e-9).ends_with("ns"));
    }
}
