//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool`.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched; every consumer in the workspace seeds its
//! generator explicitly, and determinism-per-seed is all the callers rely
//! on. The generator is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"), which passes BigCrush on its own and is
//! more than adequate for synthetic-data generation and sampling tests.

pub mod rngs {
    /// The workspace's standard seeded RNG (SplitMix64 underneath).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable constructors (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate nearby seeds.
        StdRng { state: state.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
}

/// A range that can be sampled uniformly (the subset of
/// `rand::distributions::uniform::SampleRange` used here).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Core entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below what any caller here can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling methods (the subset of `rand::Rng` used here).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..8);
            assert!((5..8).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
