//! # ADJ — Adaptive Distributed Join
//!
//! A from-scratch Rust reproduction of *Fast Distributed Complex Join
//! Processing* (Zhang, Qiao, Yu, Cheng — ICDE 2021, arXiv:2102.13370).
//!
//! ADJ evaluates complex (cyclic, multi-way) natural-join queries in a
//! distributed setting in **one shuffle round**, and — unlike the prior
//! HCubeJ line of work, which minimizes communication alone — **co-optimizes
//! pre-computing, communication, and computation cost**, trading a little of
//! the first two for large reductions of the third by materializing
//! hypertree-bag joins before the final one-round evaluation.
//!
//! ## Crate map
//!
//! | module (re-export) | crate | contents |
//! |---|---|---|
//! | [`relational`] | `adj-relational` | relations, schemas, tries, intersections, output modes & row sinks |
//! | [`query`] | `adj-query` | join queries, hypergraphs, GHD/fhw, attribute orders, Q1–Q11 |
//! | [`cluster`] | `adj-cluster` | the simulated shared-nothing cluster |
//! | [`hcube`] | `adj-hcube` | HCube share optimizer + Push/Pull/Merge shuffles + cross-query index cache |
//! | [`leapfrog`] | `adj-leapfrog` | Leapfrog Triejoin (+ cached variant) |
//! | [`sampling`] | `adj-sampling` | sampling-based cardinality estimation |
//! | [`trace`] | `adj-trace` | zero-dependency lock-free per-query span/event tracing |
//! | [`faults`] | `adj-faults` | cancellation tokens + deterministic fault injection |
//! | [`core`] | `adj-core` | the ADJ optimizer (Algorithm 2) and executor |
//! | [`batch`] | `adj-batch` | vectorized binding batches + the batched Leapfrog driver |
//! | [`service`] | `adj-service` | concurrent query service: plan + index caches, admission control, metrics, output modes |
//! | [`baselines`] | `adj-baselines` | SparkSQL-analog, BigJoin, HCubeJ(+Cache) |
//! | [`datagen`] | `adj-datagen` | seeded stand-ins for the Table I datasets |
//!
//! ## Quick start
//!
//! ```
//! use adj::prelude::*;
//!
//! // A triangle query over a small synthetic graph.
//! let query = paper_query(PaperQuery::Q1);
//! let graph = Dataset::WB.graph(0.01);
//! let db = query.instantiate(&graph);
//!
//! let adj = Adj::with_workers(4);
//! let out = adj.execute(&query, &db).unwrap();
//! println!("{} triangles in {:.3}s", out.rows().len(), out.report.total_secs());
//! # assert!(out.rows().len() > 0);
//!
//! // Only need the number? Count mode never gathers a single tuple:
//! let n = adj.execute_mode(&query, &db, OutputMode::Count).unwrap();
//! assert_eq!(n.output, QueryOutput::Count(out.rows().len() as u64));
//! ```
//!
//! ## Output modes
//!
//! Every execution entry point — [`Adj::execute_mode`](prelude::Adj::execute_mode),
//! `execute_plan`/`yannakakis` in [`core`], `Service::execute_mode` and
//! text queries prefixed `COUNT(…)` / `LIMIT k (…)` / `EXISTS(…)` in
//! [`service`] — accepts an [`OutputMode`](prelude::OutputMode) choosing
//! what comes back: the full relation (`Rows`), the cardinality alone
//! (`Count` — per-worker counters, nothing materialized or gathered), a
//! bounded sample (`Limit(n)` — Leapfrog short-circuits at `n` rows per
//! worker), or bare emptiness (`Exists` — stops at the first witness).
//! Results arrive as a [`QueryOutput`](prelude::QueryOutput); the old
//! `outcome.result` field is now `outcome.output`, with `outcome.rows()`
//! as the drop-in accessor for `Rows`-mode call sites.

pub use adj_baselines as baselines;
pub use adj_batch as batch;
pub use adj_cluster as cluster;
pub use adj_core as core;
pub use adj_datagen as datagen;
pub use adj_delta as delta;
pub use adj_faults as faults;
pub use adj_hcube as hcube;
pub use adj_leapfrog as leapfrog;
pub use adj_query as query;
pub use adj_relational as relational;
pub use adj_sampling as sampling;
pub use adj_service as service;
pub use adj_trace as trace;

/// The common imports for applications.
pub mod prelude {
    pub use adj_cluster::{Cluster, ClusterConfig, TransportKind};
    pub use adj_core::{
        Adj, AdjConfig, CostParams, ExecutionReport, Prepared, QueryPlan, SkewConfig, Strategy,
    };
    pub use adj_datagen::{update_stream, Dataset, UpdateBatch, UpdateStreamConfig};
    pub use adj_delta::{DeltaConfig, DeltaRelation, MutationBatch};
    pub use adj_faults::{CancelToken, FaultAction, FaultPlan, FaultSite};
    pub use adj_query::{
        paper_query, parse_query, parse_query_explain, parse_query_with_mode, Atom, Bindings,
        ExplainMode, JoinQuery, PaperQuery, QueryFingerprint, Term,
    };
    pub use adj_relational::{
        Attr, BoundValues, Database, OutputMode, QueryOutput, Relation, RowSink, Schema, Value,
    };
    pub use adj_sampling::{Sampler, SamplingConfig};
    pub use adj_service::{
        AdmissionPolicy, BatchOutcome, BindingBatch, MutationOutcome, PreparedQuery, QueryRequest,
        ResultCacheStats, Service, ServiceConfig, ServiceError, ServiceOutcome, SlowQuery,
        TraceSettings, WorkerPool,
    };
    pub use adj_trace::{Event, QueryTrace, SpanGuard, Trace, Tracer, COORDINATOR_LANE};
}
