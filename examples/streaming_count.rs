//! Output modes in action: the same cyclic pattern query served as full
//! rows, a bare count, a bounded sample, and an emptiness probe — one
//! cached plan, four very different result-transfer bills.
//!
//! ```sh
//! cargo run --release --example streaming_count [scale]
//! ```

use adj::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.04);
    let query = paper_query(PaperQuery::Q4);
    let graph = Dataset::WB.graph(scale);
    println!(
        "Q4 (5-cycle + chord be) over the WB stand-in: {} edges (scale {scale})\n",
        graph.len()
    );

    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        ..Default::default()
    });
    service.register_database("wb", query.instantiate(&graph));

    // One plan optimization serves every mode below — the plan cache keys
    // on the fingerprint's plan-relevant prefix, which ignores the mode.
    println!("{:<28} {:>12} {:>14} {:>10}", "mode", "answer", "tuples back", "secs");
    for (label, mode) in [
        ("Rows (materialize all)", OutputMode::Rows),
        ("Count", OutputMode::Count),
        ("Limit(10)", OutputMode::Limit(10)),
        ("Exists", OutputMode::Exists),
    ] {
        let t0 = Instant::now();
        let out = service.execute_mode("wb", &query, mode).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let answer = match &out.output {
            QueryOutput::Rows(rel) => format!("{} rows", rel.len()),
            QueryOutput::Count(n) => format!("{n}"),
            QueryOutput::Exists(b) => format!("{b}"),
        };
        println!("{label:<28} {answer:>12} {:>14} {secs:>10.4}", out.output.tuples_returned());
    }

    // The same modes are one text prefix away:
    let text = "COUNT(Q(a,b,c,d,e) :- R1(a,b), R2(b,c), R3(c,d), R4(d,e), R5(e,a), R6(b,e))";
    let counted = service.execute_text("wb", text).unwrap();
    println!("\nexecute_text({text:?})");
    println!("  -> {:?} (cache_hit: {})", counted.output, counted.cache_hit);

    let stats = service.stats();
    println!(
        "\nserved by mode: rows {} / count {} / limit {} / exists {}",
        stats.metrics.by_mode.rows,
        stats.metrics.by_mode.count,
        stats.metrics.by_mode.limit,
        stats.metrics.by_mode.exists,
    );
    println!(
        "tuples found {} vs tuples returned {} — what streaming modes saved",
        stats.metrics.output_tuples, stats.metrics.output_tuples_returned
    );
    println!(
        "plan cache: {} miss, {} hits (one optimization, every mode)",
        stats.cache.misses, stats.cache.hits
    );
}
