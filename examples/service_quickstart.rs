//! Quickstart for the serving layer: register databases, fire concurrent
//! queries through a worker pool, read the metrics.
//!
//! ```sh
//! cargo run --release --example service_quickstart
//! ```

use adj::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A service over one shared 4-worker simulated cluster. Admission:
    //    at most 3 queries in flight, the rest queue.
    let service = Arc::new(Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        max_concurrent: 3,
        ..Default::default()
    }));

    // 2. Named databases: one per workload shape, instantiated from the WB
    //    stand-in graph (Sec. VII-A test-case construction).
    let graph = Dataset::WB.graph(0.03);
    println!("dataset: WB stand-in, {} edges", graph.len());
    for shape in [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7] {
        let q = paper_query(shape);
        service.register_database(format!("{shape:?}"), q.instantiate(&graph));
    }

    // 3. A mixed repeated-shape workload through the pool: 48 queries, 6
    //    submitter threads' worth of handles drained by 6 pool workers.
    //    Every fourth query only wants the cardinality — `with_mode` keeps
    //    it on the same cached plan but ships zero result tuples back.
    let pool = WorkerPool::new(Arc::clone(&service), 6);
    let requests: Vec<QueryRequest> = (0..48)
        .map(|i| {
            let shape = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7][i % 3];
            let req = QueryRequest::query(format!("{shape:?}"), paper_query(shape));
            if i % 4 == 3 {
                req.with_mode(OutputMode::Count)
            } else {
                req
            }
        })
        .collect();
    let t0 = std::time::Instant::now();
    let results = pool.run_all(requests);
    let wall = t0.elapsed().as_secs_f64();

    for (label, shape) in [("Q1", PaperQuery::Q1), ("Q4", PaperQuery::Q4), ("Q7", PaperQuery::Q7)] {
        let out = results
            .iter()
            .enumerate()
            .find(|(i, _)| [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7][i % 3] == shape)
            .and_then(|(_, r)| r.as_ref().ok())
            .expect("every query succeeds");
        // `count()` reads the cardinality whatever the outcome's mode.
        println!("{label}: {} result tuples", out.output.count().unwrap());
    }

    // 4. What serving bought us, straight from the registry.
    let stats = service.stats();
    println!("\nserved {} queries in {wall:.3}s wall", stats.metrics.queries_ok);
    println!(
        "plan cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cache.len
    );
    println!(
        "admission:  peak {} running, {} waiting (limit 3)",
        stats.admission.peak_running, stats.admission.peak_waiting
    );
    println!(
        "latency:    p50 {:.4}s  p99 {:.4}s  mean {:.4}s",
        stats.metrics.total.p50_secs, stats.metrics.total.p99_secs, stats.metrics.total.mean_secs
    );
    println!(
        "phases:     opt {:.4}s  comm {:.4}s  comp {:.4}s (means)",
        stats.metrics.optimization.mean_secs,
        stats.metrics.communication.mean_secs,
        stats.metrics.computation.mean_secs
    );
    println!(
        "modes:      {} rows + {} count; {} tuples found, {} returned",
        stats.metrics.by_mode.rows,
        stats.metrics.by_mode.count,
        stats.metrics.output_tuples,
        stats.metrics.output_tuples_returned
    );
    println!(
        "index:      {} hits / {} misses ({:.0}% hit rate), {} B resident, \
         {} relations reused vs {} built",
        stats.index.hits,
        stats.index.misses,
        stats.index.hit_rate() * 100.0,
        stats.index.resident_bytes,
        stats.metrics.index_relations_reused,
        stats.metrics.index_relations_built
    );

    // 5. The warm path in one picture: the same query served cold paid the
    //    shuffle + trie build; served again it joins over cached Arc<Trie>
    //    handles — index_build drops to ~0 and nothing is shuffled.
    let q1 = paper_query(PaperQuery::Q1);
    let t_warm = std::time::Instant::now();
    let warm = service.execute("Q1", &q1).expect("warm query");
    println!(
        "\nwarm Q1:    {:.4}s end-to-end ({} relations reused, {} tuple copies shuffled, \
         index_build {:.6}s)",
        t_warm.elapsed().as_secs_f64(),
        warm.report.index_relations_reused,
        warm.report.comm_tuples,
        warm.report.index_build_secs
    );

    // 6. Where did the time go? `EXPLAIN ANALYZE` runs the query with
    //    tracing forced and renders the plan tree with per-phase,
    //    per-worker, and per-trie-level actuals — no config change needed.
    let analyzed = service
        .explain_text("Q1", "EXPLAIN ANALYZE COUNT(R1(a,b), R2(b,c), R3(a,c))")
        .expect("explain analyze");
    println!("\n{analyzed}");
}
