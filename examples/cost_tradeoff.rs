//! The paper's central claim, live: on a complex cyclic query the
//! communication-first plan is computation-bound, and spending a little on
//! pre-computing + extra communication slashes the total cost (Fig. 1(b)).
//!
//! ```sh
//! cargo run --release --example cost_tradeoff [scale]
//! ```

use adj::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let graph = Dataset::LJ.graph(scale);
    println!("LJ stand-in, {} edges (scale {scale}); 4 workers\n", graph.len());

    for pq in [PaperQuery::Q5, PaperQuery::Q6] {
        let query = paper_query(pq);
        let db = query.instantiate(&graph);
        let adj = Adj::with_workers(4);
        println!("── {} ──", query);
        for (label, strategy) in
            [("Comm-First", Strategy::CommFirst), ("Co-Opt", Strategy::CoOptimize)]
        {
            match adj.execute_with_strategy(&query, &db, strategy) {
                Ok(out) => {
                    let r = &out.report;
                    println!(
                        "{label:>11}: total {:.4}s = opt {:.4} + pre {:.4} + comm {:.4} + comp {:.4}  ({} results{})",
                        r.total_secs(),
                        r.optimization_secs,
                        r.precompute_secs,
                        r.communication_secs,
                        r.computation_secs,
                        out.rows().len(),
                        if out.plan.has_precompute() {
                            format!(", pre-computed bags: {:?}", out.plan.precompute)
                        } else {
                            String::new()
                        },
                    );
                }
                Err(e) => println!("{label:>11}: FAIL ({e})"),
            }
        }
        println!();
    }
}
