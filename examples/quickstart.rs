//! Quickstart: run ADJ end to end on a triangle query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adj::prelude::*;

fn main() {
    // 1. A workload: the triangle query Q1 (Fig. 7 of the paper) over a
    //    synthetic power-law graph standing in for web-BerkStan.
    let query = paper_query(PaperQuery::Q1);
    let graph = Dataset::WB.graph(0.05);
    println!("query:   {query}");
    println!("dataset: WB stand-in, {} edges", graph.len());

    // 2. A test-case database: each atom gets a copy of the graph renamed to
    //    its schema (exactly how Sec. VII-A constructs test-cases).
    let db = query.instantiate(&graph);

    // 3. Run ADJ on a simulated 4-worker cluster.
    let adj = Adj::with_workers(4);
    let out = adj.execute(&query, &db).expect("in-budget run");

    println!("\nresult: {} triangles", out.rows().len());
    println!(
        "plan:   order {:?}, {} pre-computed bag(s)",
        out.plan.order,
        out.plan.precompute.len()
    );
    println!("share:  p = {:?}", out.report.share);
    println!("\ncost breakdown (the Tables II–IV row format):");
    println!("  optimization:  {:>8.4}s", out.report.optimization_secs);
    println!("  pre-computing: {:>8.4}s", out.report.precompute_secs);
    println!(
        "  communication: {:>8.4}s ({} tuple copies shuffled)",
        out.report.communication_secs, out.report.comm_tuples
    );
    println!("  computation:   {:>8.4}s", out.report.computation_secs);
    println!("  total:         {:>8.4}s", out.report.total_secs());

    // 4. Show a few results (columns follow the plan's attribute order).
    println!("\nfirst results, columns {}:", out.rows().schema());
    for row in out.rows().rows().take(5) {
        println!("  triangle {row:?}");
    }
}
