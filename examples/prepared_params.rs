//! Prepared statements in action: "triangles through vertex $v" prepared
//! once, bound per request — one cached plan and one warm index family
//! serving every vertex, with inline literals as the one-shot spelling.
//!
//! ```sh
//! cargo run --release --example prepared_params [scale]
//! ```

use adj::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.04);
    let triangle = paper_query(PaperQuery::Q1);
    let graph = Dataset::WB.graph(scale);
    println!("triangles over the WB stand-in: {} edges (scale {scale})\n", graph.len());

    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        ..Default::default()
    });
    service.register_database("wb", triangle.instantiate(&graph));

    // Prepare once: $v is a bind-time parameter. The plan (and, after the
    // first execution, the shuffled index family) is shared by every
    // binding below.
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("wb", &q).unwrap();
    println!(
        "prepared {} with {} parameter(s): {:?}\n",
        q.name,
        prepared.params().len(),
        prepared.params().iter().map(|(n, _)| format!("${n}")).collect::<Vec<_>>(),
    );

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12}",
        "binding", "triangles", "comm tuples", "secs", "plan cache"
    );
    for v in [1u32, 7, 20, 33, 7] {
        let t0 = Instant::now();
        let out = service
            .execute_bound(&prepared, &Bindings::new().set("v", v), OutputMode::Count)
            .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "$v = {v:<5} {:>12?} {:>12} {secs:>10.4} {:>12}",
            out.output.count().unwrap(),
            out.report.comm_tuples,
            if out.cache_hit { "hit" } else { "miss" },
        );
    }

    // Inline literals are the one-shot spelling of the same thing — and
    // the same shape, so they hit the prepared plan too.
    let one_shot = service.execute_text("wb", "COUNT(R1(7,b), R2(b,c), R3(7,c))").unwrap();
    println!(
        "\nexecute_text(\"COUNT(R1(7,b), R2(b,c), R3(7,c))\") -> {:?} (cache_hit: {})",
        one_shot.output, one_shot.cache_hit
    );

    // A parse error points at the offending byte, not the whole string.
    let err = service.execute_text("wb", "R1($v,b), R2(b,!!)").unwrap_err();
    println!("malformed text -> {err}");

    let m = service.metrics();
    println!(
        "\nprepared statements: {} | params bound: {} | bound selectivity: {:.4}",
        m.queries_prepared,
        m.params_bound,
        m.bound_selectivity.unwrap_or(f64::NAN)
    );
    let stats = service.stats();
    println!(
        "plan cache: {:.1}% hits | index cache: {:.1}% hits",
        stats.cache.hit_rate() * 100.0,
        stats.index.hit_rate() * 100.0
    );
}
