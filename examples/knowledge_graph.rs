//! A heterogeneous (non-subgraph) workload: a tiny knowledge-graph join,
//! showing the public API on relations with *different* contents and
//! arities — the "querying knowledge graph" application of the paper's
//! introduction.
//!
//! Query: find (user, group, event, city) where the user belongs to the
//! group, the group hosts the event, the event takes place in the city, and
//! the user lives in that same city — a 4-cycle across four typed relations.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use adj::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Attributes: u = user(0), g = group(1), e = event(2), c = city(3).
    let (u, g, e, c) = (Attr(0), Attr(1), Attr(2), Attr(3));
    let mut rng = StdRng::seed_from_u64(7);
    let users = 3000u32;
    let groups = 150u32;
    let events = 400u32;
    let cities = 40u32;

    // member(u, g), hosts(g, e), located(e, c), lives(u, c)
    let member: Vec<(Value, Value)> = (0..users)
        .flat_map(|x| (0..3).map(move |_| (x, 0)).collect::<Vec<_>>())
        .map(|(x, _)| (x, rng.gen_range(0..groups)))
        .collect();
    let mut rng2 = StdRng::seed_from_u64(8);
    let hosts: Vec<(Value, Value)> =
        (0..events).map(|ev| (rng2.gen_range(0..groups), ev)).collect();
    let located: Vec<(Value, Value)> =
        (0..events).map(|ev| (ev, rng2.gen_range(0..cities))).collect();
    let lives: Vec<(Value, Value)> = (0..users).map(|x| (x, rng2.gen_range(0..cities))).collect();

    let query = JoinQuery::new(
        "Reachable",
        vec![
            Atom::new("member", Schema::new(vec![u, g]).unwrap()),
            Atom::new("hosts", Schema::new(vec![g, e]).unwrap()),
            Atom::new("located", Schema::new(vec![e, c]).unwrap()),
            Atom::new("lives", Schema::new(vec![u, c]).unwrap()),
        ],
    );
    let mut db = Database::new();
    db.insert("member", Relation::from_pairs(u, g, &member));
    db.insert("hosts", Relation::from_pairs(g, e, &hosts));
    db.insert("located", Relation::from_pairs(e, c, &located));
    db.insert("lives", Relation::from_pairs(u, c, &lives));

    println!("query: {query}");
    for (name, rel) in db.iter() {
        println!("  {name}{}: {} tuples", rel.schema(), rel.len());
    }

    // Estimate the cardinality first (what ADJ's optimizer does internally).
    let order = query.attrs();
    let sampler = Sampler::new(&db, &query, &order).unwrap();
    let est = sampler.estimate(&SamplingConfig { samples: 2000, seed: 1 }).unwrap();
    println!("\nsampling estimate: ~{:.0} results (|val(user)| = {})", est.cardinality, est.val_a);

    // Run both strategies.
    let adj = Adj::with_workers(4);
    for (label, strategy) in
        [("co-optimization", Strategy::CoOptimize), ("comm-first", Strategy::CommFirst)]
    {
        let out = adj.execute_with_strategy(&query, &db, strategy).unwrap();
        println!(
            "{label:>16}: {} results, total {:.4}s (pre {:.4}s, comm {:.4}s, comp {:.4}s)",
            out.rows().len(),
            out.report.total_secs(),
            out.report.precompute_secs,
            out.report.communication_secs,
            out.report.computation_secs,
        );
    }
}
