//! Subgraph census: count every 3–5 node pattern of the paper's workload on
//! one graph — the "finding triangle and other complex patterns in graphs"
//! application the paper's introduction motivates (local topology features
//! for statistical relational learning).
//!
//! ```sh
//! cargo run --release --example subgraph_census [scale]
//! ```

use adj::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.03);
    let graph = Dataset::LJ.graph(scale);
    println!("subgraph census over the LJ stand-in ({} edges, scale {scale})\n", graph.len());
    println!(
        "{:<6} {:>14} {:>10} {:>12} {:>10}",
        "query", "matches", "secs", "shuffled", "pre-bags"
    );

    let adj = Adj::with_workers(4);
    for pq in PaperQuery::ALL {
        let query = paper_query(pq);
        let db = query.instantiate(&graph);
        match adj.execute(&query, &db) {
            Ok(out) => println!(
                "{:<6} {:>14} {:>10.3} {:>12} {:>10}",
                pq.name(),
                out.rows().len(),
                out.report.total_secs(),
                out.report.comm_tuples,
                out.plan.precompute.len(),
            ),
            Err(e) => println!("{:<6} {:>14}", pq.name(), format!("FAIL: {e}")),
        }
    }
    println!("\n(The easy patterns Q7–Q11 finish fastest — the reason the paper only");
    println!(" evaluates Q1–Q6; see Sec. VII-A.)");
}
