//! Mode-equivalence acceptance tests: for every paper shape and both
//! plan-search strategies, the streaming output modes must agree exactly
//! with the materialized `Rows` result — `Count` equals the cardinality,
//! `Limit(n)` is an exact-size subset, `Exists` agrees with emptiness —
//! and the `Limit`/`Exists` short-circuit must provably enumerate less
//! than the full result.

use adj::prelude::*;

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];

/// A deterministic test graph with plenty of matches for every shape.
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

#[test]
fn count_equals_materialized_cardinality() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        for strategy in STRATEGIES {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let full = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let counted = adj.execute_with(&q, &db, strategy, OutputMode::Count).unwrap();
            assert_eq!(
                counted.output,
                QueryOutput::Count(full.rows().len() as u64),
                "{shape:?}/{strategy:?}"
            );
            assert_eq!(
                counted.output.tuples_returned(),
                0,
                "{shape:?}/{strategy:?}: count must ship no tuples"
            );
        }
    }
}

#[test]
fn limit_is_an_exact_size_subset() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        for strategy in STRATEGIES {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let full = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let full = full.rows();
            // Under, at, and over the full cardinality.
            for n in [3usize, full.len(), full.len() + 10] {
                let limited = adj.execute_with(&q, &db, strategy, OutputMode::Limit(n)).unwrap();
                let sample = limited.rows();
                assert_eq!(
                    sample.len(),
                    n.min(full.len()),
                    "{shape:?}/{strategy:?}/limit {n}: exact length"
                );
                // Two independent plannings may pick different attribute
                // orders; align schemas before the subset check.
                let aligned = sample.permute(full.schema().attrs()).unwrap();
                for row in aligned.rows() {
                    assert!(
                        full.contains_row(row),
                        "{shape:?}/{strategy:?}/limit {n}: row {row:?} not in the full result"
                    );
                }
            }
        }
    }
}

#[test]
fn exists_agrees_with_emptiness() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        for strategy in STRATEGIES {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let full = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let witness = adj.execute_with(&q, &db, strategy, OutputMode::Exists).unwrap();
            assert_eq!(
                witness.output,
                QueryOutput::Exists(!full.rows().is_empty()),
                "{shape:?}/{strategy:?}"
            );
        }
    }
    // ...and on an input with no matches at all.
    let q = paper_query(PaperQuery::Q1);
    let mut db = Database::new();
    db.insert("R1", Relation::from_pairs(Attr(0), Attr(1), &[(1, 2)]));
    db.insert("R2", Relation::from_pairs(Attr(1), Attr(2), &[(9, 9)]));
    db.insert("R3", Relation::from_pairs(Attr(0), Attr(2), &[(1, 3)]));
    let none = adj.execute_mode(&q, &db, OutputMode::Exists).unwrap();
    assert_eq!(none.output, QueryOutput::Exists(false));
}

/// `LIMIT 0` is answered from the plan alone: an empty relation over the
/// plan's schema, with no shuffle, no communication round, and no worker
/// dispatch at all.
#[test]
fn limit_zero_short_circuits_before_any_dispatch() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        let q = paper_query(shape);
        let db = q.instantiate(&g);
        let rounds_before = adj.cluster().comm().rounds();
        let out = adj.execute_mode(&q, &db, OutputMode::Limit(0)).unwrap();
        let rows = out.rows();
        assert!(rows.is_empty(), "{shape:?}: LIMIT 0 returns the empty relation");
        assert_eq!(rows.arity(), q.num_attrs(), "{shape:?}: schema still matches the plan");
        assert_eq!(out.report.comm_tuples, 0, "{shape:?}: nothing shuffled");
        assert_eq!(out.report.computation_secs, 0.0, "{shape:?}: no worker ran");
        assert_eq!(
            adj.cluster().comm().rounds(),
            rounds_before,
            "{shape:?}: no communication round was opened"
        );
    }
    // The text form drives the same path.
    let (q, _, mode) = parse_query_with_mode("LIMIT 0 (R1(a,b), R2(b,c), R3(a,c))").unwrap();
    assert_eq!(mode, OutputMode::Limit(0));
    let db = paper_query(PaperQuery::Q1).instantiate(&g);
    let out = adj.execute_mode(&q, &db, mode).unwrap();
    assert!(out.rows().is_empty());
}

/// `Limit(n)` returns a *canonical* sample — the n lexicographically
/// smallest result rows under the plan's attribute order — so the selection
/// is deterministic across worker counts and partitionings, not an artifact
/// of which worker's buffer was gathered first.
#[test]
fn limit_selection_is_deterministic_across_worker_counts() {
    let g = graph();
    for shape in SHAPES {
        let q = paper_query(shape);
        let db = q.instantiate(&g);
        // CommFirst's order selection is independent of the cluster width,
        // so every worker count plans the same attribute order.
        let reference = Adj::with_workers(1)
            .execute_with(&q, &db, Strategy::CommFirst, OutputMode::Limit(7))
            .unwrap();
        for workers in [2usize, 3, 4] {
            let sample = Adj::with_workers(workers)
                .execute_with(&q, &db, Strategy::CommFirst, OutputMode::Limit(7))
                .unwrap();
            assert_eq!(
                sample.rows(),
                reference.rows(),
                "{shape:?}: {workers}-worker Limit sample differs from single-worker"
            );
        }
        // And the sample is exactly the n smallest rows of the full result.
        let full = Adj::with_workers(1)
            .execute_with(&q, &db, Strategy::CommFirst, OutputMode::Rows)
            .unwrap();
        let full = full.rows();
        let n = 7usize.min(full.len());
        let width = full.arity();
        let expect =
            Relation::from_flat(full.schema().clone(), full.flat()[..n * width].to_vec()).unwrap();
        assert_eq!(reference.rows(), &expect, "{shape:?}: sample must be the n smallest rows");
    }
}

/// The short-circuit acceptance criterion: `Exists`/`Limit` must stop the
/// Leapfrog enumeration early, visibly emitting fewer tuples than the full
/// cardinality (the executor's report carries the merged Leapfrog
/// counters, so the emit tally is directly observable).
#[test]
fn exists_and_limit_short_circuit_the_enumeration() {
    let g = graph();
    let adj = Adj::with_workers(4);
    // Q7 (length-2 path) has the biggest output of the shapes here, so the
    // short-circuit saving is unmistakable.
    let q = paper_query(PaperQuery::Q7);
    let db = q.instantiate(&g);

    let full = adj.execute(&q, &db).unwrap();
    let cardinality = full.rows().len() as u64;
    assert_eq!(full.report.counters.output_tuples, cardinality);
    assert!(cardinality > 8, "need a result large enough to short-circuit ({cardinality})");

    let witness = adj.execute_mode(&q, &db, OutputMode::Exists).unwrap();
    assert!(
        witness.report.counters.output_tuples < cardinality,
        "exists emitted {} of {cardinality} tuples — no short-circuit happened",
        witness.report.counters.output_tuples
    );

    let limited = adj.execute_mode(&q, &db, OutputMode::Limit(2)).unwrap();
    assert!(
        limited.report.counters.output_tuples < cardinality,
        "limit(2) emitted {} of {cardinality} tuples — no short-circuit happened",
        limited.report.counters.output_tuples
    );
    assert_eq!(limited.rows().len(), 2);
}
