//! Mode-equivalence acceptance tests: for every paper shape and both
//! plan-search strategies, the streaming output modes must agree exactly
//! with the materialized `Rows` result — `Count` equals the cardinality,
//! `Limit(n)` is an exact-size subset, `Exists` agrees with emptiness —
//! and the `Limit`/`Exists` short-circuit must provably enumerate less
//! than the full result.

use adj::prelude::*;

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];

/// A deterministic test graph with plenty of matches for every shape.
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

#[test]
fn count_equals_materialized_cardinality() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        for strategy in STRATEGIES {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let full = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let counted = adj.execute_with(&q, &db, strategy, OutputMode::Count).unwrap();
            assert_eq!(
                counted.output,
                QueryOutput::Count(full.rows().len() as u64),
                "{shape:?}/{strategy:?}"
            );
            assert_eq!(
                counted.output.tuples_returned(),
                0,
                "{shape:?}/{strategy:?}: count must ship no tuples"
            );
        }
    }
}

#[test]
fn limit_is_an_exact_size_subset() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        for strategy in STRATEGIES {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let full = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let full = full.rows();
            // Under, at, and over the full cardinality.
            for n in [3usize, full.len(), full.len() + 10] {
                let limited = adj.execute_with(&q, &db, strategy, OutputMode::Limit(n)).unwrap();
                let sample = limited.rows();
                assert_eq!(
                    sample.len(),
                    n.min(full.len()),
                    "{shape:?}/{strategy:?}/limit {n}: exact length"
                );
                // Two independent plannings may pick different attribute
                // orders; align schemas before the subset check.
                let aligned = sample.permute(full.schema().attrs()).unwrap();
                for row in aligned.rows() {
                    assert!(
                        full.contains_row(row),
                        "{shape:?}/{strategy:?}/limit {n}: row {row:?} not in the full result"
                    );
                }
            }
        }
    }
}

#[test]
fn exists_agrees_with_emptiness() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for shape in SHAPES {
        for strategy in STRATEGIES {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let full = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let witness = adj.execute_with(&q, &db, strategy, OutputMode::Exists).unwrap();
            assert_eq!(
                witness.output,
                QueryOutput::Exists(!full.rows().is_empty()),
                "{shape:?}/{strategy:?}"
            );
        }
    }
    // ...and on an input with no matches at all.
    let q = paper_query(PaperQuery::Q1);
    let mut db = Database::new();
    db.insert("R1", Relation::from_pairs(Attr(0), Attr(1), &[(1, 2)]));
    db.insert("R2", Relation::from_pairs(Attr(1), Attr(2), &[(9, 9)]));
    db.insert("R3", Relation::from_pairs(Attr(0), Attr(2), &[(1, 3)]));
    let none = adj.execute_mode(&q, &db, OutputMode::Exists).unwrap();
    assert_eq!(none.output, QueryOutput::Exists(false));
}

/// The short-circuit acceptance criterion: `Exists`/`Limit` must stop the
/// Leapfrog enumeration early, visibly emitting fewer tuples than the full
/// cardinality (the executor's report carries the merged Leapfrog
/// counters, so the emit tally is directly observable).
#[test]
fn exists_and_limit_short_circuit_the_enumeration() {
    let g = graph();
    let adj = Adj::with_workers(4);
    // Q7 (length-2 path) has the biggest output of the shapes here, so the
    // short-circuit saving is unmistakable.
    let q = paper_query(PaperQuery::Q7);
    let db = q.instantiate(&g);

    let full = adj.execute(&q, &db).unwrap();
    let cardinality = full.rows().len() as u64;
    assert_eq!(full.report.counters.output_tuples, cardinality);
    assert!(cardinality > 8, "need a result large enough to short-circuit ({cardinality})");

    let witness = adj.execute_mode(&q, &db, OutputMode::Exists).unwrap();
    assert!(
        witness.report.counters.output_tuples < cardinality,
        "exists emitted {} of {cardinality} tuples — no short-circuit happened",
        witness.report.counters.output_tuples
    );

    let limited = adj.execute_mode(&q, &db, OutputMode::Limit(2)).unwrap();
    assert!(
        limited.report.counters.output_tuples < cardinality,
        "limit(2) emitted {} of {cardinality} tuples — no short-circuit happened",
        limited.report.counters.output_tuples
    );
    assert_eq!(limited.rows().len(), 2);
}
