//! Cross-method correctness: every join method in the workspace must return
//! exactly the same result set as a reference pairwise-hash-join evaluation,
//! for every evaluated query, on several datasets and cluster widths.

use adj::prelude::*;
use adj_baselines::{run_bigjoin, run_binary_join, run_hcubej, run_hcubej_cached, BaselineConfig};
use adj_cluster::Cluster;

/// Reference evaluation: left-deep pairwise hash joins in atom order.
fn reference(db: &Database, q: &JoinQuery) -> Relation {
    let mut it = q.atoms.iter();
    let mut acc = db.get(&it.next().unwrap().name).unwrap().clone();
    for a in it {
        acc = acc.join(db.get(&a.name).unwrap()).unwrap();
    }
    acc
}

fn check_same(label: &str, expected: &Relation, got: &Relation) {
    assert_eq!(got.len(), expected.len(), "{label}: cardinality mismatch");
    let aligned = got.permute(expected.schema().attrs()).unwrap();
    assert_eq!(&aligned, expected, "{label}: result set mismatch");
}

fn run_all_methods(query: PaperQuery, graph: &Relation, workers: usize) {
    let q = paper_query(query);
    let db = q.instantiate(graph);
    let expected = reference(&db, &q);
    let bcfg = BaselineConfig::default();

    let cluster = Cluster::new(ClusterConfig::with_workers(workers));
    let (r, _) = run_binary_join(&cluster, &db, &q, &bcfg).unwrap();
    check_same("binary", &expected, &r);

    let cluster = Cluster::new(ClusterConfig::with_workers(workers));
    let (r, _) = run_bigjoin(&cluster, &db, &q, &bcfg).unwrap();
    check_same("bigjoin", &expected, &r);

    let cluster = Cluster::new(ClusterConfig::with_workers(workers));
    let (r, _) = run_hcubej(&cluster, &db, &q, &bcfg).unwrap();
    check_same("hcubej", &expected, &r);

    let cluster = Cluster::new(ClusterConfig::with_workers(workers));
    let (r, _) = run_hcubej_cached(&cluster, &db, &q, &bcfg).unwrap();
    check_same("hcubej+cache", &expected, &r);

    let adj = Adj::with_workers(workers);
    let out = adj.execute_with_strategy(&q, &db, Strategy::CoOptimize).unwrap();
    check_same("adj-coopt", &expected, out.rows());
    let out = adj.execute_with_strategy(&q, &db, Strategy::CommFirst).unwrap();
    check_same("adj-commfirst", &expected, out.rows());
}

#[test]
fn all_methods_agree_q1_wb() {
    run_all_methods(PaperQuery::Q1, &Dataset::WB.graph(0.02), 4);
}

#[test]
fn all_methods_agree_q2_as() {
    run_all_methods(PaperQuery::Q2, &Dataset::AS.graph(0.015), 4);
}

#[test]
fn all_methods_agree_q4_lj() {
    run_all_methods(PaperQuery::Q4, &Dataset::LJ.graph(0.01), 4);
}

#[test]
fn all_methods_agree_q5_wt() {
    run_all_methods(PaperQuery::Q5, &Dataset::WT.graph(0.01), 3);
}

#[test]
fn all_methods_agree_q6_as() {
    run_all_methods(PaperQuery::Q6, &Dataset::AS.graph(0.01), 4);
}

#[test]
fn all_methods_agree_on_single_worker() {
    run_all_methods(PaperQuery::Q4, &Dataset::WB.graph(0.01), 1);
}

#[test]
fn all_methods_agree_on_wide_cluster() {
    run_all_methods(PaperQuery::Q1, &Dataset::WB.graph(0.02), 13);
}

#[test]
fn easy_queries_q7_to_q11() {
    // The acyclic/easy patterns must also be correct end to end.
    let graph = Dataset::WB.graph(0.01);
    for pq in [PaperQuery::Q7, PaperQuery::Q8, PaperQuery::Q9, PaperQuery::Q10, PaperQuery::Q11] {
        let q = paper_query(pq);
        let db = q.instantiate(&graph);
        let expected = reference(&db, &q);
        let adj = Adj::with_workers(4);
        let out = adj.execute(&q, &db).unwrap();
        check_same(pq.name(), &expected, out.rows());
    }
}

#[test]
fn running_example_database_matches_paper() {
    // The exact database of Fig. 2, query of Eq. (2). The paper's Fig. 3
    // walks server S0; here we verify the full distributed result against
    // the reference join.
    use adj::query::workload::running_example;
    let q = running_example();
    let mut db = Database::new();
    db.insert(
        "R1",
        Relation::from_rows(
            Schema::from_ids(&[0, 1, 2]),
            &[&[1, 2, 1], &[1, 2, 2], &[2, 1, 1], &[2, 1, 4]],
        )
        .unwrap(),
    );
    db.insert("R2", Relation::from_pairs(Attr(0), Attr(3), &[(1, 1), (1, 2), (1, 3), (4, 1)]));
    db.insert("R3", Relation::from_pairs(Attr(2), Attr(3), &[(1, 1), (1, 2), (2, 1), (2, 2)]));
    db.insert(
        "R4",
        Relation::from_pairs(Attr(1), Attr(4), &[(2, 3), (2, 4), (2, 5), (1, 2), (2, 2), (1, 1)]),
    );
    db.insert(
        "R5",
        Relation::from_pairs(Attr(2), Attr(4), &[(2, 4), (2, 5), (1, 3), (2, 3), (1, 1), (2, 2)]),
    );
    let expected = reference(&db, &q);
    let adj = Adj::with_workers(4);
    let out = adj.execute(&q, &db).unwrap();
    check_same("running example", &expected, out.rows());
    assert!(!out.rows().is_empty(), "the paper's example has results");
}
