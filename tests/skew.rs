//! Skew-correctness acceptance tests: on a Zipf(z = 1.2) heavy-hitter
//! database, every paper shape, both plan-search strategies, and all four
//! output modes must produce results byte-identical to the single-worker
//! oracle — heavy-hitter routing (spread + broadcast with spreader-ownership
//! dedup) must never lose, duplicate, or reorder a binding.

use adj::datagen::{generate_zipf, ZipfConfig};
use adj::prelude::*;

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];

/// The adversarial workload: a Zipf(1.2) graph whose top source value
/// carries ~13% of all edges even after set-semantics dedup.
fn zipf_graph() -> Relation {
    generate_zipf(&ZipfConfig { nodes: 400, edges: 3000, exponent: 1.2, seed: 0x21BF })
}

/// An ADJ instance with heavy-hitter detection tuned to catch the Zipf
/// head (the default 1/8 threshold sits right at the post-dedup share; 5%
/// detects the top few values robustly).
fn adj_with(workers: usize) -> Adj {
    Adj::new(AdjConfig {
        cluster: ClusterConfig::with_workers(workers),
        skew: SkewConfig { min_fraction: 0.05, ..Default::default() },
        ..Default::default()
    })
}

#[test]
fn zipf_database_actually_arms_the_routing_table() {
    let g = zipf_graph();
    let adj = adj_with(4);
    let q = paper_query(PaperQuery::Q7);
    let db = q.instantiate(&g);
    let out = adj.execute(&q, &db).unwrap();
    assert!(
        out.report.hot_values > 0,
        "the Zipf head must be detected, or this suite tests nothing"
    );
    assert!(out.report.hot_routed_tuples > 0, "hot tuples must take the skew route");
}

#[test]
fn all_modes_match_the_single_worker_oracle() {
    let g = zipf_graph();
    for shape in SHAPES {
        let q = paper_query(shape);
        let db = q.instantiate(&g);
        for strategy in STRATEGIES {
            let oracle = adj_with(1).execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let oracle_rows = oracle.rows();
            let adj = adj_with(4);

            // Rows: byte-identical modulo the plans' attribute orders.
            let rows = adj.execute_with(&q, &db, strategy, OutputMode::Rows).unwrap();
            let aligned = rows.rows().permute(oracle_rows.schema().attrs()).unwrap();
            assert_eq!(
                &aligned, oracle_rows,
                "{shape:?}/{strategy:?}: distributed rows differ from the oracle"
            );

            // Count: exact — a duplicated or lost binding shows up here
            // even though relations dedup on gather.
            let count = adj.execute_with(&q, &db, strategy, OutputMode::Count).unwrap();
            assert_eq!(
                count.output,
                QueryOutput::Count(oracle_rows.len() as u64),
                "{shape:?}/{strategy:?}: count drifted under skew routing"
            );

            // Exists agrees with emptiness.
            let exists = adj.execute_with(&q, &db, strategy, OutputMode::Exists).unwrap();
            assert_eq!(exists.output, QueryOutput::Exists(!oracle_rows.is_empty()));

            // Limit: exact size, subset of the oracle.
            let n = 6usize;
            let limited = adj.execute_with(&q, &db, strategy, OutputMode::Limit(n)).unwrap();
            let sample = limited.rows();
            assert_eq!(sample.len(), n.min(oracle_rows.len()), "{shape:?}/{strategy:?}");
            let sample = sample.permute(oracle_rows.schema().attrs()).unwrap();
            for row in sample.rows() {
                assert!(
                    oracle_rows.contains_row(row),
                    "{shape:?}/{strategy:?}: limit row {row:?} not in the oracle result"
                );
            }
        }
    }
}

#[test]
fn duplicate_counts_would_be_caught_per_worker_count() {
    // The spreader-ownership rule must hold for every cluster width (the
    // exact-product share differs per width, so each width exercises a
    // different spread layout). Count mode is the duplicate detector: the
    // gather path sums per-worker counters without any dedup.
    let g = zipf_graph();
    let q = paper_query(PaperQuery::Q1);
    let db = q.instantiate(&g);
    let truth = adj_with(1).execute(&q, &db).unwrap().rows().len() as u64;
    for workers in [2usize, 3, 4, 6] {
        let out = adj_with(workers).execute_mode(&q, &db, OutputMode::Count).unwrap();
        assert_eq!(
            out.output,
            QueryOutput::Count(truth),
            "{workers}-worker count drifted — a binding was produced twice or lost"
        );
    }
}

#[test]
fn routing_balances_the_shuffle_versus_naive_hashing() {
    let g = zipf_graph();
    let q = paper_query(PaperQuery::Q7);
    let db = q.instantiate(&g);

    let balanced = adj_with(4).execute(&q, &db).unwrap();
    let naive = Adj::new(AdjConfig {
        cluster: ClusterConfig::with_workers(4),
        skew: SkewConfig::disabled(),
        ..Default::default()
    })
    .execute(&q, &db)
    .unwrap();
    assert_eq!(naive.report.hot_values, 0);
    assert_eq!(
        balanced.rows().permute(naive.rows().schema().attrs()).unwrap(),
        *naive.rows(),
        "routing must not change the answer"
    );

    let b = &balanced.report;
    assert!(
        (b.max_partition_tuples() as f64) <= 2.0 * b.mean_partition_tuples(),
        "balanced shuffle: max {} vs mean {:.1}",
        b.max_partition_tuples(),
        b.mean_partition_tuples()
    );
    assert!(
        b.partition_balance() < naive.report.partition_balance(),
        "routing must improve balance: {:.2} vs naive {:.2}",
        b.partition_balance(),
        naive.report.partition_balance()
    );
}
