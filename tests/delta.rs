//! Dynamic-data oracle matrix: a service mutated through `Service::mutate`
//! must answer every query byte-identically to a service whose database was
//! fully re-registered with the same effective contents — across query
//! shapes, plan strategies, and all four output modes — plus the edge cases
//! (tombstones of missing rows, empty batches, compaction boundaries).

use adj::prelude::*;
use std::sync::Arc;

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];

/// A deterministic, mildly-skewed test graph.
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..300u32)
        .flat_map(|i| vec![(i % 37, (i * 7 + 1) % 37), ((i * 3) % 37, (i * 11 + 5) % 37)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

/// A service with pinned cost sampling, so two services over identical
/// contents independently derive identical plans (the precondition for
/// byte-identical `Limit` results).
fn pinned_service(strategy: Strategy, delta: DeltaConfig) -> Service {
    Service::new(ServiceConfig {
        adj: AdjConfig {
            cluster: ClusterConfig::with_workers(2),
            cost: CostParams { measure_beta: false, ..Default::default() },
            ..Default::default()
        },
        strategy,
        delta,
        ..Default::default()
    })
}

/// Asserts the mutated service and the oracle agree in all four output
/// modes for `q`.
fn assert_modes_agree(mutated: &Service, oracle: &Service, q: &JoinQuery, label: &str) {
    let a = mutated.execute("db", q).unwrap();
    let b = oracle.execute("db", q).unwrap();
    let aligned = a.rows().permute(b.rows().schema().attrs()).unwrap();
    assert_eq!(&aligned, b.rows(), "{label}: Rows diverged");

    for mode in [OutputMode::Count, OutputMode::Exists, OutputMode::Limit(5)] {
        let a = mutated.execute_mode("db", q, mode).unwrap();
        let b = oracle.execute_mode("db", q, mode).unwrap();
        match mode {
            OutputMode::Limit(_) => {
                let aligned = a.rows().permute(b.rows().schema().attrs()).unwrap();
                assert_eq!(&aligned, b.rows(), "{label}: Limit diverged");
            }
            _ => assert_eq!(a.output, b.output, "{label}: {mode:?} diverged"),
        }
    }
}

/// The matrix: Q1/Q4/Q7 × both strategies × all four output modes, over a
/// seeded update stream applied batch-by-batch through `Service::mutate`
/// and mirrored into a full re-register oracle.
#[test]
fn mutate_then_query_matches_full_reregister_everywhere() {
    let g = graph();
    let stream_cfg = UpdateStreamConfig {
        batches: 3,
        inserts_per_batch: 12,
        deletes_per_batch: 8,
        nodes: 37,
        exponent: 0.4,
        ..Default::default()
    };
    for shape in SHAPES {
        let q = paper_query(shape);
        for strategy in STRATEGIES {
            let mutated = pinned_service(strategy, DeltaConfig::default());
            mutated.register_database("db", q.instantiate(&g));
            mutated.execute("db", &q).unwrap(); // warm plan + indexes

            let mut oracle_db = q.instantiate(&g);
            for (i, batch) in update_stream(&g, &stream_cfg).iter().enumerate() {
                let ins: Vec<&[Value]> = batch.inserts.iter().map(|r| r.as_slice()).collect();
                let del: Vec<&[Value]> = batch.deletes.iter().map(|r| r.as_slice()).collect();

                let mut m = MutationBatch::new("R1");
                for r in &batch.inserts {
                    m = m.insert(r);
                }
                for r in &batch.deletes {
                    m = m.delete(r);
                }
                let outcome = mutated.mutate("db", &m).unwrap();
                assert_eq!(outcome.seq, (i + 1) as u64);
                assert_eq!(outcome.inserted, ins.len());
                assert_eq!(outcome.deleted, del.len());

                oracle_db.insert_rows("R1", &ins).unwrap();
                oracle_db.delete_rows("R1", &del).unwrap();
                let oracle = pinned_service(strategy, DeltaConfig::default());
                oracle.register_database("db", oracle_db.clone());

                assert_modes_agree(
                    &mutated,
                    &oracle,
                    &q,
                    &format!("{shape:?}/{strategy:?}/batch {i}"),
                );
            }
        }
    }
}

#[test]
fn tombstones_of_missing_rows_are_inert() {
    let g = graph();
    let q = paper_query(PaperQuery::Q1);
    let mutated = pinned_service(Strategy::CoOptimize, DeltaConfig::default());
    mutated.register_database("db", q.instantiate(&g));
    let before = mutated.execute("db", &q).unwrap();

    // Rows that were never in R1: the delete must be absorbed silently.
    let outcome = mutated
        .mutate("db", &MutationBatch::new("R1").delete(&[9000, 9001]).delete(&[9002, 9003]))
        .unwrap();
    assert_eq!(outcome.deleted, 0);
    assert_eq!(outcome.overlay_tuples, 0, "inert tombstones must not inflate the overlay");

    let after = mutated.execute("db", &q).unwrap();
    let aligned = after.rows().permute(before.rows().schema().attrs()).unwrap();
    assert_eq!(&aligned, before.rows(), "missing-row deletes must not change any result");

    // Deleting a row, then tombstoning it again: second batch is inert too.
    let row = [0, 1];
    let first = mutated.mutate("db", &MutationBatch::new("R1").delete(&row)).unwrap();
    assert_eq!(first.deleted, 1);
    let second = mutated.mutate("db", &MutationBatch::new("R1").delete(&row)).unwrap();
    assert_eq!(second.deleted, 0);
}

#[test]
fn empty_batches_change_nothing_anywhere() {
    let g = graph();
    let q = paper_query(PaperQuery::Q4);
    let mutated = pinned_service(Strategy::CoOptimize, DeltaConfig::default());
    mutated.register_database("db", q.instantiate(&g));
    let before = mutated.execute("db", &q).unwrap();

    let outcome = mutated.mutate("db", &MutationBatch::new("R1")).unwrap();
    assert_eq!((outcome.seq, outcome.inserted, outcome.deleted), (0, 0, 0));
    assert!(!outcome.compacted);

    let after = mutated.execute("db", &q).unwrap();
    assert!(after.cache_hit, "an empty batch must not invalidate the plan");
    let aligned = after.rows().permute(before.rows().schema().attrs()).unwrap();
    assert_eq!(&aligned, before.rows());

    // The no-op fast path still validates the relation name...
    assert!(mutated.mutate("db", &MutationBatch::new("NoSuchRelation")).is_err());

    // ...and after a real batch it reports the live sequence and overlay
    // without touching either.
    let real = mutated.mutate("db", &MutationBatch::new("R1").insert(&[9999, 9998])).unwrap();
    let noop = mutated.mutate("db", &MutationBatch::new("R1")).unwrap();
    assert_eq!(noop.seq, real.seq, "no-op must not bump the sequence");
    assert_eq!(noop.overlay_tuples, real.overlay_tuples);
    assert_eq!((noop.inserted, noop.deleted, noop.entries_patched), (0, 0, 0));
}

#[test]
fn compaction_boundaries_preserve_the_oracle() {
    // An aggressive compaction config: the overlay folds every few
    // batches, exercising patch→fold→patch cycling mid-stream.
    let g = graph();
    let q = paper_query(PaperQuery::Q1);
    let delta = DeltaConfig { max_overlay_fraction: 0.05, min_overlay_tuples: 8 };
    let mutated = pinned_service(Strategy::CoOptimize, delta);
    mutated.register_database("db", q.instantiate(&g));
    mutated.execute("db", &q).unwrap();

    let stream_cfg = UpdateStreamConfig {
        batches: 4,
        inserts_per_batch: 20,
        deletes_per_batch: 10,
        nodes: 37,
        exponent: 0.4,
        ..Default::default()
    };
    let mut oracle_db = q.instantiate(&g);
    let mut compactions = 0usize;
    for batch in update_stream(&g, &stream_cfg) {
        let ins: Vec<&[Value]> = batch.inserts.iter().map(|r| r.as_slice()).collect();
        let del: Vec<&[Value]> = batch.deletes.iter().map(|r| r.as_slice()).collect();
        let mut m = MutationBatch::new("R1");
        for r in &batch.inserts {
            m = m.insert(r);
        }
        for r in &batch.deletes {
            m = m.delete(r);
        }
        let outcome = mutated.mutate("db", &m).unwrap();
        compactions += outcome.compacted as usize;
        if outcome.compacted {
            assert_eq!(outcome.overlay_tuples, 0, "a fold leaves an empty overlay");
        }
        oracle_db.insert_rows("R1", &ins).unwrap();
        oracle_db.delete_rows("R1", &del).unwrap();

        let oracle = pinned_service(Strategy::CoOptimize, DeltaConfig::default());
        oracle.register_database("db", oracle_db.clone());
        assert_modes_agree(&mutated, &oracle, &q, "compaction-boundary batch");
    }
    assert!(compactions > 0, "the aggressive config must actually compact mid-stream");
    assert!(mutated.metrics().compactions >= compactions as u64);
}

/// Mutations interleaved with concurrent queries: every query observes
/// either the pre- or post-batch snapshot, never a torn state.
#[test]
fn concurrent_queries_see_consistent_snapshots() {
    let g = graph();
    let q = paper_query(PaperQuery::Q1);
    let service = Arc::new(pinned_service(Strategy::CoOptimize, DeltaConfig::default()));
    service.register_database("db", q.instantiate(&g));
    let base_count = match service.execute_mode("db", &q, OutputMode::Count).unwrap().output {
        QueryOutput::Count(n) => n,
        other => panic!("unexpected output {other:?}"),
    };

    // The mutation adds a fresh triangle 600-601-602 to all three
    // relations; queries concurrently poll the count.
    std::thread::scope(|s| {
        let svc = Arc::clone(&service);
        s.spawn(move || {
            for rel in ["R1", "R2", "R3"] {
                let edge: [Value; 2] = match rel {
                    "R1" => [600, 601],
                    "R2" => [601, 602],
                    _ => [600, 602],
                };
                svc.mutate("db", &MutationBatch::new(rel).insert(&edge)).unwrap();
            }
        });
        let svc = Arc::clone(&service);
        let q = &q;
        s.spawn(move || {
            for _ in 0..20 {
                let out = svc.execute_mode("db", q, OutputMode::Count).unwrap();
                match out.output {
                    QueryOutput::Count(n) => {
                        assert!(
                            n == base_count || n == base_count + 1,
                            "count {n} is neither pre- nor post-mutation ({base_count})"
                        );
                    }
                    other => panic!("unexpected output {other:?}"),
                }
            }
        });
    });
    let final_count = match service.execute_mode("db", &q, OutputMode::Count).unwrap().output {
        QueryOutput::Count(n) => n,
        other => panic!("unexpected output {other:?}"),
    };
    assert_eq!(final_count, base_count + 1, "the grown triangle must be visible at the end");
}
