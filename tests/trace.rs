//! Integration tests of the tracing subsystem end to end: well-formed span
//! trees for every query × strategy × output-mode combination, results
//! byte-identical with tracing on and off, EXPLAIN ANALYZE actuals
//! consistent with the execution report, ring-buffer overflow accounting,
//! and true no-op behavior when disabled.

use adj::prelude::*;
use adj_trace::lane_for_worker;

const WORKERS: usize = 3;

fn service_with(strategy: Strategy, trace: Option<TraceSettings>) -> Service {
    // Pin the cost model's β calibration: the traced and plain services
    // plan independently, and the byte-identical assertions below need
    // both plans to be a pure function of the data, not of machine load.
    let cost = CostParams { measure_beta: false, ..Default::default() };
    Service::new(ServiceConfig {
        adj: AdjConfig {
            cluster: ClusterConfig::with_workers(WORKERS),
            cost,
            ..Default::default()
        },
        strategy,
        trace: trace.unwrap_or_default(),
        ..Default::default()
    })
}

fn traced_settings() -> TraceSettings {
    TraceSettings { enabled: true, ..Default::default() }
}

#[test]
fn span_trees_are_well_formed_across_the_matrix() {
    for (pq, dataset) in [
        (PaperQuery::Q1, Dataset::WB),
        (PaperQuery::Q4, Dataset::AS),
        (PaperQuery::Q7, Dataset::WB),
    ] {
        let q = paper_query(pq);
        let db = q.instantiate(&dataset.graph(0.01));
        for strategy in [Strategy::CoOptimize, Strategy::CommFirst] {
            let traced = service_with(strategy, Some(traced_settings()));
            traced.register_database("g", db.clone());
            let plain = service_with(strategy, None);
            plain.register_database("g", db.clone());

            for mode in
                [OutputMode::Rows, OutputMode::Count, OutputMode::Limit(5), OutputMode::Exists]
            {
                let label = format!("{pq:?}/{strategy:?}/{mode:?}");
                let on = traced.execute_mode("g", &q, mode).unwrap();
                let off = plain.execute_mode("g", &q, mode).unwrap();

                // Identical results with tracing on and off.
                assert_eq!(on.output, off.output, "{label}: tracing must not change results");
                assert!(off.trace.is_none(), "{label}: default config must not trace");

                let trace = on.trace.as_ref().expect("tracing enabled");
                assert!(trace.is_well_formed(), "{label}: spans must nest per lane");
                assert_eq!(trace.events_dropped, 0, "{label}: default capacity suffices");

                // Every coordinator phase span is present (admission_wait
                // is not: uncontended queries discard it by design)...
                for name in ["plan_lookup", "shuffle", "computation", "gather"] {
                    assert!(
                        !trace.events_named(name).is_empty(),
                        "{label}: missing phase span {name}"
                    );
                }
                // ...and exactly one final-join lane per worker.
                let joins = trace.events_named("join");
                assert_eq!(joins.len(), WORKERS, "{label}: one join span per worker");
                for w in 0..WORKERS {
                    assert!(
                        joins.iter().any(|e| e.lane == lane_for_worker(w)),
                        "{label}: worker {w} has no join span"
                    );
                }
                assert!(
                    trace.lanes().len() > WORKERS,
                    "{label}: coordinator + worker lanes expected, got {:?}",
                    trace.lanes()
                );

                // The Chrome export is syntactically sound and names lanes.
                let json = trace.to_chrome_json();
                assert!(json.starts_with('[') && json.trim_end().ends_with(']'), "{label}");
                assert!(json.contains("thread_name"), "{label}");
            }
        }
    }
}

#[test]
fn worker_join_spans_sum_worker_tuples() {
    let q = paper_query(PaperQuery::Q4);
    let db = q.instantiate(&Dataset::AS.graph(0.01));
    let service = service_with(Strategy::CoOptimize, Some(traced_settings()));
    service.register_database("g", db);
    let out = service.execute("g", &q).unwrap();
    let trace = out.trace.as_ref().unwrap();
    // The per-worker join spans carry output_tuples args that sum to the
    // report's result cardinality.
    let total: u64 = trace
        .events_named("join")
        .iter()
        .flat_map(|e| &e.args)
        .filter(|(k, _)| k == "output_tuples")
        .map(|(_, v)| v)
        .sum();
    assert_eq!(total, out.report.output_tuples, "span args must match the report");
}

#[test]
fn explain_analyze_actuals_match_the_execution_report() {
    let q = paper_query(PaperQuery::Q1);
    let db = q.instantiate(&Dataset::WB.graph(0.01));
    let service = service_with(Strategy::CoOptimize, None);
    service.register_database("g", db);

    let count = service.execute_mode("g", &q, OutputMode::Count).unwrap();
    let expect = match count.output {
        QueryOutput::Count(n) => n,
        other => panic!("count mode returned {other:?}"),
    };

    let text = "EXPLAIN ANALYZE COUNT(R1(a,b), R2(b,c), R3(a,c))";
    let rendered = service.explain_text("g", text).unwrap();
    assert!(rendered.starts_with("EXPLAIN ANALYZE mode=Count"), "{rendered}");
    assert!(
        rendered.contains(&format!("output: tuples={expect}")),
        "actual cardinality must appear: {rendered}"
    );
    for needle in [
        "actuals:",
        "phases: optimization=",
        "level 0 (",
        "worker join spans: w0=",
        "trace: events=",
    ] {
        assert!(rendered.contains(needle), "missing {needle:?} in: {rendered}");
    }
    // One lane line per worker in the partition fill.
    for w in 0..WORKERS {
        assert!(rendered.contains(&format!("w{w}=")), "{rendered}");
    }
}

#[test]
fn ring_buffer_overflow_is_counted_not_lost() {
    let q = paper_query(PaperQuery::Q4);
    let db = q.instantiate(&Dataset::AS.graph(0.01));
    let service = service_with(
        Strategy::CoOptimize,
        Some(TraceSettings { enabled: true, buffer_capacity: 4, ..Default::default() }),
    );
    service.register_database("g", db);
    let out = service.execute("g", &q).unwrap();
    let trace = out.trace.as_ref().unwrap();
    assert_eq!(trace.events.len(), 4, "capacity bounds retained events");
    assert!(trace.events_dropped > 0, "overflow must be counted");
    assert_eq!(trace.capacity, 4);
    assert!(service.metrics().trace_events_dropped > 0, "drop counter reaches the registry");
    // Execution itself is unaffected by the tiny buffer.
    let plain = service_with(Strategy::CoOptimize, None);
    plain.register_database("g", q.instantiate(&Dataset::AS.graph(0.01)));
    assert_eq!(out.output, plain.execute("g", &q).unwrap().output);
}

#[test]
fn disabled_tracing_records_nothing_anywhere() {
    let q = paper_query(PaperQuery::Q7);
    let db = q.instantiate(&Dataset::WB.graph(0.01));
    let service = service_with(Strategy::CoOptimize, None);
    service.register_database("g", db);
    let out = service.execute("g", &q).unwrap();
    assert!(out.trace.is_none());
    let m = service.metrics();
    assert_eq!(m.queries_traced, 0);
    assert_eq!(m.trace_events_dropped, 0);
    assert!(service.slow_queries().is_empty());

    // The raw no-op tracer records nothing even when exercised directly.
    let tracer = Tracer::disabled();
    let mut span = tracer.span(COORDINATOR_LANE, "anything");
    span.arg("k", 1);
    drop(span);
    tracer.instant(COORDINATOR_LANE, "marker", "detail");
    let trace = tracer.finish();
    assert!(trace.events.is_empty());
    assert_eq!(trace.events_dropped, 0);
}

#[test]
fn prepared_bound_executions_trace_too() {
    let tri = paper_query(PaperQuery::Q1);
    let db = tri.instantiate(&Dataset::WB.graph(0.01));
    let service = service_with(Strategy::CoOptimize, Some(traced_settings()));
    service.register_database("g", db);
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("g", &q).unwrap();
    let out =
        service.execute_bound(&prepared, &Bindings::new().set("v", 3), OutputMode::Count).unwrap();
    let trace = out.trace.as_ref().expect("bound path traces like any other");
    assert!(trace.is_well_formed());
    assert!(!trace.events_named("shuffle").is_empty());
    assert_eq!(trace.events_named("join").len(), WORKERS);
}
