//! Integration tests of the serving layer: concurrent mixed-shape traffic
//! must return byte-identical results to the single-shot `Adj::execute`
//! path, hit the plan cache on repeated shapes, and enforce admission
//! control.

use adj::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// The mixed workload: three shapes of increasing complexity (triangle,
/// square with both diagonals' 4-cycle structure, and the 5-clique-ish Q7).
const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];

fn shape_db_name(q: PaperQuery) -> String {
    format!("db_{:?}", q)
}

/// A deterministic test graph.
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

/// A service with one database registered per workload shape.
fn serving(workers: usize, max_concurrent: usize) -> Arc<Service> {
    let config = ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(workers), ..Default::default() },
        max_concurrent,
        ..Default::default()
    };
    let service = Arc::new(Service::new(config));
    let g = graph();
    for shape in SHAPES {
        let q = paper_query(shape);
        service.register_database(shape_db_name(shape), q.instantiate(&g));
    }
    service
}

/// The acceptance workload: 6 client threads × 10 queries each over 3
/// repeated shapes, validated byte-for-byte against sequential
/// `Adj::execute` and required to exceed a 50% plan-cache hit rate.
#[test]
fn concurrent_mixed_workload_matches_single_shot_and_hits_cache() {
    const THREADS: usize = 6;
    const PER_THREAD: usize = 10;
    let service = serving(4, 4);

    // Ground truth: the one-shot library path, one fresh Adj per query.
    let g = graph();
    let truth: HashMap<String, Relation> = SHAPES
        .iter()
        .map(|&shape| {
            let q = paper_query(shape);
            let db = q.instantiate(&g);
            let out = Adj::with_workers(4).execute(&q, &db).unwrap();
            (shape_db_name(shape), out.output.into_rows().unwrap())
        })
        .collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = Arc::clone(&service);
            let truth = &truth;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let shape = SHAPES[(t + i) % SHAPES.len()];
                    let q = paper_query(shape);
                    let out = service.execute(&shape_db_name(shape), &q).unwrap();
                    let expected = &truth[&shape_db_name(shape)];
                    // Byte-identical: align attribute order, then compare
                    // the full normalized tuple sets.
                    let aligned = out.rows().permute(expected.schema().attrs()).unwrap();
                    assert_eq!(
                        &aligned, expected,
                        "thread {t} query {i} ({shape:?}) diverged from Adj::execute"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(stats.metrics.queries_ok, total);
    assert_eq!(stats.metrics.queries_failed, 0);
    assert_eq!(stats.metrics.queries_rejected, 0);
    assert_eq!(stats.admission.admitted, total);
    assert!(stats.admission.peak_running <= 4, "admission limit breached");

    // Repeated shapes must reuse plans: ≥ 1 miss per shape is inevitable,
    // racing threads may each miss once, but the steady state is hits.
    assert!(stats.cache.hits > 0);
    assert!(
        stats.cache.hit_rate() > 0.5,
        "hit rate {:.2} too low (hits={} misses={})",
        stats.cache.hit_rate(),
        stats.cache.hits,
        stats.cache.misses
    );

    // Latency histograms saw every query.
    assert_eq!(stats.metrics.total.count, total);
    assert!(stats.metrics.total.mean_secs > 0.0);
    assert!(stats.metrics.total.p99_secs >= stats.metrics.total.p50_secs);
}

/// The worker-pool front end serves the same workload with the same
/// results.
#[test]
fn worker_pool_serves_mixed_workload() {
    let service = serving(2, 2);
    let pool = WorkerPool::new(Arc::clone(&service), 4);
    let requests: Vec<QueryRequest> = (0..24)
        .map(|i| {
            let shape = SHAPES[i % SHAPES.len()];
            QueryRequest::query(shape_db_name(shape), paper_query(shape))
        })
        .collect();
    let results = pool.run_all(requests);
    assert_eq!(results.len(), 24);
    // All succeed, and equal shapes return equal results.
    let mut by_shape: HashMap<String, usize> = HashMap::new();
    for (i, r) in results.iter().enumerate() {
        let out = r.as_ref().unwrap();
        let shape = SHAPES[i % SHAPES.len()];
        let len = out.rows().len();
        let prev = by_shape.entry(shape_db_name(shape)).or_insert(len);
        assert_eq!(*prev, len, "query {i} cardinality diverged");
    }
    assert_eq!(service.metrics().queries_ok, 24);
    assert!(service.cache_stats().hit_rate() > 0.5);
}

/// Text-level `COUNT(...)` flows through the worker pool: the mode prefix
/// is parsed service-side, the plan is shared with the `Rows`-mode
/// submissions, and the answer matches the materialized cardinality.
#[test]
fn text_count_through_the_worker_pool() {
    let service = serving(2, 2);
    let pool = WorkerPool::new(Arc::clone(&service), 3);
    let db = shape_db_name(PaperQuery::Q1);
    let full = pool
        .submit(QueryRequest::query(&db, paper_query(PaperQuery::Q1)))
        .wait()
        .unwrap()
        .rows()
        .len() as u64;

    let count_text = "COUNT(Q(a,b,c) :- R1(a,b), R2(b,c), R3(a,c))";
    let results = pool.run_all((0..9).map(|_| QueryRequest::text(&db, count_text)));
    for r in results {
        let out = r.unwrap();
        assert_eq!(out.mode, OutputMode::Count);
        assert_eq!(out.output, QueryOutput::Count(full));
        assert!(out.cache_hit, "COUNT text must reuse the Rows-mode plan");
    }

    let stats = service.stats();
    assert_eq!(stats.metrics.by_mode.count, 9);
    assert_eq!(stats.metrics.by_mode.rows, 1);
    assert_eq!(
        stats.metrics.output_tuples_returned, full,
        "only the one Rows query shipped tuples"
    );
}

/// Text submissions and value submissions share one plan-cache entry.
#[test]
fn text_and_value_submissions_share_plans() {
    let service = serving(2, 2);
    let q1 = paper_query(PaperQuery::Q1);
    let a = service.execute(&shape_db_name(PaperQuery::Q1), &q1).unwrap();
    let b = service
        .execute_text(
            &shape_db_name(PaperQuery::Q1),
            "anything(a,b,c) :- R1(a,b), R2(b,c), R3(a,c)",
        )
        .unwrap();
    assert!(!a.cache_hit);
    assert!(b.cache_hit, "text form of Q1 must hit the value form's plan");
    assert_eq!(a.rows(), b.rows());
}

/// Admission rejects instead of OOMing: a tiny cluster memory limit turns
/// into a per-query budget that an oversized query fails up front.
#[test]
fn admission_rejects_over_budget_queries() {
    let config = ServiceConfig {
        adj: AdjConfig {
            cluster: ClusterConfig {
                num_workers: 2,
                memory_limit_bytes: Some(128),
                ..Default::default()
            },
            ..Default::default()
        },
        max_concurrent: 2,
        ..Default::default()
    };
    let service = Service::new(config);
    let q = paper_query(PaperQuery::Q1);
    service.register_database("g", q.instantiate(&graph()));
    let err = service.execute("g", &q).unwrap_err();
    assert!(err.is_rejection(), "expected memory rejection, got: {err}");
    let stats = service.stats();
    assert_eq!(stats.metrics.queries_rejected, 1);
    assert_eq!(stats.admission.rejected_memory, 1);
    assert_eq!(stats.metrics.queries_ok, 0);
}

/// Load shedding under `AdmissionPolicy::Reject`: with one slot and no
/// queue, saturating traffic must produce rejections while every accepted
/// query still completes correctly.
#[test]
fn reject_policy_sheds_load_under_saturation() {
    let config = ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        max_concurrent: 1,
        admission: AdmissionPolicy::Reject,
        ..Default::default()
    };
    let service = Arc::new(Service::new(config));
    let q = paper_query(PaperQuery::Q4);
    service.register_database("g", q.instantiate(&graph()));

    let mut served = 0u64;
    let mut shed = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let service = Arc::clone(&service);
                let q = q.clone();
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut rejected = 0u64;
                    for _ in 0..8 {
                        match service.execute("g", &q) {
                            Ok(_) => ok += 1,
                            Err(e) if e.is_rejection() => rejected += 1,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    (ok, rejected)
                })
            })
            .collect();
        for h in handles {
            let (ok, rejected) = h.join().unwrap();
            served += ok;
            shed += rejected;
        }
    });

    assert_eq!(served + shed, 48);
    assert!(served > 0, "something must get through");
    let stats = service.stats();
    assert_eq!(stats.metrics.queries_ok, served);
    assert_eq!(stats.metrics.queries_rejected, shed);
    assert_eq!(stats.admission.peak_running, 1, "Reject policy allows no overlap");
}
