//! Integration tests of the distributed machinery: worker-count invariance,
//! shuffle-implementation invariance, failure reproduction, and the
//! distributed sampler.

use adj::prelude::*;
use adj_baselines::{run_hcubej, BaselineConfig};
use adj_cluster::Cluster;
use adj_sampling::estimate_distributed;

#[test]
fn result_invariant_under_worker_count() {
    let q = paper_query(PaperQuery::Q4);
    let g = Dataset::AS.graph(0.01);
    let db = q.instantiate(&g);
    let mut counts = Vec::new();
    for w in [1usize, 2, 3, 4, 7, 8] {
        let adj = Adj::with_workers(w);
        let out = adj.execute(&q, &db).unwrap();
        counts.push(out.rows().len());
    }
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
}

#[test]
fn comm_tuples_grow_with_cluster_width() {
    // HCube duplication grows with the share product, so a wider cluster
    // shuffles more copies (the communication/parallelism trade-off).
    let q = paper_query(PaperQuery::Q1);
    let g = Dataset::WB.graph(0.02);
    let db = q.instantiate(&g);
    let narrow = Adj::with_workers(1).execute(&q, &db).unwrap().report.comm_tuples;
    let wide = Adj::with_workers(16).execute(&q, &db).unwrap().report.comm_tuples;
    assert!(wide > narrow, "wide={wide} narrow={narrow}");
}

#[test]
fn one_round_methods_use_one_round() {
    let q = paper_query(PaperQuery::Q2);
    let g = Dataset::WB.graph(0.01);
    let db = q.instantiate(&g);
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let (_, rep) = run_hcubej(&cluster, &db, &q, &BaselineConfig::default()).unwrap();
    assert_eq!(rep.rounds, 1);
}

#[test]
fn memory_budget_fails_hcubej_but_not_adj_coopt_path() {
    // ADJ still optimizes shares under the budget; the point here is that
    // the failure surfaces as a typed error, not a panic.
    let q = paper_query(PaperQuery::Q3);
    let g = Dataset::LJ.graph(0.02);
    let db = q.instantiate(&g);
    let mut cfg = ClusterConfig::with_workers(4);
    cfg.memory_limit_bytes = Some(1_000);
    let cluster = Cluster::new(cfg);
    let r = run_hcubej(&cluster, &db, &q, &BaselineConfig::default());
    assert!(r.is_err());
}

#[test]
fn distributed_sampler_matches_and_saves_communication() {
    let q = paper_query(PaperQuery::Q4);
    let g = Dataset::AS.graph(0.015);
    let db = q.instantiate(&g);
    let order = q.attrs();
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let cfg = SamplingConfig { samples: 64, seed: 11 };
    let (est, report) = estimate_distributed(&cluster, &db, &q, &order, &cfg).unwrap();
    let seq = Sampler::new(&db, &q, &order).unwrap().estimate(&cfg).unwrap();
    assert_eq!(est.cardinality, seq.cardinality);
    assert!(report.reduced_shuffle_tuples < report.naive_shuffle_tuples);
}

#[test]
fn skewed_dataset_shows_straggler_effect() {
    // On the extremely skewed WT stand-in, per-worker computation times
    // should be uneven (the Fig. 11 Q5 observation). We check the counters
    // are at least produced; timing skew itself is machine-dependent.
    let q = paper_query(PaperQuery::Q5);
    let g = Dataset::WT.graph(0.02);
    let db = q.instantiate(&g);
    let adj = Adj::with_workers(4);
    let out = adj.execute(&q, &db).unwrap();
    assert_eq!(out.report.counters.tuples_per_level.len(), q.num_attrs());
    assert!(out.report.counters.total_tuples() >= out.report.output_tuples);
}

#[test]
fn precompute_changes_rewritten_query_share() {
    // When a bag is pre-computed the rewritten query has fewer, wider
    // relations; the share optimizer may pick a different p. Verify the
    // plan pipeline is consistent end to end by forcing pre-computation.
    use adj::core::{execute_plan, optimize, OutputMode, QueryPlan, Strategy};
    let q = paper_query(PaperQuery::Q6);
    let g = Dataset::AS.graph(0.01);
    let db = q.instantiate(&g);
    let cfg = adj::core::AdjConfig::default();
    let cluster = Cluster::new(cfg.cluster.clone());
    let mut plan = optimize(&q, &db, &cfg, Strategy::CoOptimize).unwrap();
    let c_mask: u64 = plan
        .tree
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.is_single_edge())
        .map(|(i, _)| 1u64 << i)
        .sum();
    plan.relations = QueryPlan::relations_for(&q, &plan.tree, c_mask);
    plan.precompute = (0..plan.tree.len()).filter(|v| c_mask & (1 << v) != 0).collect();
    if !adj::query::order::is_valid_order(&plan.tree, &plan.order) {
        plan.order = adj::query::order::valid_orders(&plan.tree)[0].clone();
    }
    let (forced, rep_forced) = execute_plan(&cluster, &db, &plan, &cfg, OutputMode::Rows).unwrap();
    assert!(rep_forced.precompute_tuples > 0);

    let baseline = Adj::with_workers(cfg.cluster.num_workers)
        .execute_with_strategy(&q, &db, Strategy::CommFirst)
        .unwrap();
    assert_eq!(forced.rows().len(), baseline.rows().len());
}
