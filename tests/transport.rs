//! Transport oracle matrix: the serialized wire backend must be
//! observationally identical to the default in-process (`Arc`-passing)
//! backend — byte-identical results for every workload shape × plan
//! strategy × output mode — while actually encoding real frames (non-zero
//! `wire_bytes`) where the in-process backend moves none. The warm
//! index-cache path must move zero bytes, zero rounds, and zero messages
//! on *both* backends, and the PR 8 chaos matrix must hold on the
//! serialized backend at the new per-batch transport fault sites.
//!
//! The fault injector is process-global, so every test in this binary
//! takes the file-local [`SERIAL`] lock first (the same discipline as
//! tests/faults.rs; other test binaries are separate processes).

use adj::faults::{install, FaultAction, FaultPlan, FaultSite};
use adj::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Serializes the tests in this binary (see module docs).
static SERIAL: Mutex<()> = Mutex::new(());

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];
const MODES: [OutputMode; 4] =
    [OutputMode::Rows, OutputMode::Count, OutputMode::Exists, OutputMode::Limit(5)];
/// The per-batch transport sites introduced with the serialized backend.
const TRANSPORT_SITES: [FaultSite; 2] = [FaultSite::TransportSend, FaultSite::TransportRecv];

fn shape_db_name(q: PaperQuery) -> String {
    format!("db_{q:?}")
}

/// A deterministic test graph (same family as tests/faults.rs).
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

/// A fresh (cold-cache) service pinned to `strategy` and `transport`,
/// with one database per workload shape.
fn serving(strategy: Strategy, transport: TransportKind) -> Arc<Service> {
    let config = ServiceConfig {
        adj: AdjConfig {
            cluster: ClusterConfig::with_workers(2),
            // Planning must be a pure function of the data here: the oracle
            // matrix compares *plans' outputs* across two service instances,
            // so a load-sensitive measured β could flip near-tie attribute
            // orders between them.
            cost: CostParams { measure_beta: false, ..Default::default() },
            ..Default::default()
        },
        strategy,
        transport,
        max_concurrent: 2,
        ..Default::default()
    };
    let service = Arc::new(Service::new(config));
    let g = graph();
    for shape in SHAPES {
        let q = paper_query(shape);
        service.register_database(shape_db_name(shape), q.instantiate(&g));
    }
    service
}

/// The oracle matrix: two services differing *only* in transport serve
/// every shape × strategy × output mode identically. The serialized
/// backend's cold runs put real frames on the wire (`wire_bytes > 0` in
/// the execution report and the metrics snapshot); the in-process backend
/// never does.
#[test]
fn serialized_backend_is_byte_identical_to_in_process() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for strategy in STRATEGIES {
        let inproc = serving(strategy, TransportKind::InProcess);
        let wire = serving(strategy, TransportKind::Serialized);
        for shape in SHAPES {
            let db = shape_db_name(shape);
            let q = paper_query(shape);

            // Cold Rows run first: the one execution that moves data.
            let a = inproc.execute(&db, &q).unwrap();
            let b = wire.execute(&db, &q).unwrap();
            assert_eq!(a.output, b.output, "{strategy:?}/{shape:?}: cold Rows diverged");
            assert_eq!(
                a.report.wire_bytes, 0,
                "{strategy:?}/{shape:?}: in-process transport reported wire bytes"
            );
            assert!(
                b.report.wire_bytes > 0,
                "{strategy:?}/{shape:?}: serialized cold run put nothing on the wire"
            );
            // Both backends agree on the modeled byte volume and tuple
            // counts — framing overhead is accounted separately.
            assert_eq!(
                a.report.comm_tuples, b.report.comm_tuples,
                "{strategy:?}/{shape:?}: backends moved different tuple volumes"
            );

            // Every remaining mode runs warm off the shared index cache and
            // must agree across backends.
            for mode in MODES {
                let a = inproc.execute_mode(&db, &q, mode).unwrap();
                let b = wire.execute_mode(&db, &q, mode).unwrap();
                assert_eq!(a.output, b.output, "{strategy:?}/{shape:?}/{mode}: outputs diverged");
                assert_eq!(
                    b.report.wire_bytes, 0,
                    "{strategy:?}/{shape:?}/{mode}: warm rerun re-shipped bytes"
                );
            }
        }
        let m = wire.stats().metrics;
        assert!(m.wire_bytes > 0, "{strategy:?}: metrics never accumulated wire bytes");
        assert_eq!(
            inproc.stats().metrics.wire_bytes,
            0,
            "{strategy:?}: in-process metrics accumulated wire bytes"
        );
    }
}

/// The warm index-cache path is structurally free on both backends: after
/// the cold run is taken, a warm rerun records zero tuples, zero bytes,
/// zero rounds, AND zero messages — the transport never even opens the
/// round (the round/message ledger is transport-owned now, so a fully
/// warm shuffle cannot leak a phantom round).
#[test]
fn warm_path_moves_nothing_on_either_backend() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for transport in [TransportKind::InProcess, TransportKind::Serialized] {
        let service = serving(Strategy::CoOptimize, transport);
        let db = shape_db_name(PaperQuery::Q4);
        let q = paper_query(PaperQuery::Q4);

        let cold = service.execute(&db, &q).unwrap();
        let (tuples, bytes, rounds, messages) = service.cluster().comm().take();
        assert!(tuples > 0 && rounds > 0 && messages > 0, "{transport:?}: cold run moved nothing");
        if transport == TransportKind::Serialized {
            assert!(bytes > 0, "serialized cold run recorded no wire bytes");
        }

        let warm = service.execute(&db, &q).unwrap();
        assert_eq!(cold.output, warm.output, "{transport:?}: warm rerun diverged");
        assert_eq!(
            service.cluster().comm().snapshot(),
            (0, 0, 0, 0),
            "{transport:?}: warm rerun was not communication-free"
        );
        assert_eq!(warm.report.wire_bytes, 0, "{transport:?}: warm rerun shipped frames");
    }
}

/// Sanity floor for the chaos matrix below: a cold serialized run reaches
/// both per-batch transport sites (so `nth: 0` arms always have something
/// to hit).
#[test]
fn cold_serialized_runs_reach_both_transport_sites() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for strategy in STRATEGIES {
        for shape in SHAPES {
            let service = serving(strategy, TransportKind::Serialized);
            let faults = install(FaultPlan::new());
            service.execute(&shape_db_name(shape), &paper_query(shape)).unwrap();
            for site in TRANSPORT_SITES {
                assert!(
                    faults.hits(site) > 0,
                    "{strategy:?} {shape:?} cold run never reached {site:?}"
                );
            }
        }
    }
}

/// The PR 8 chaos matrix rerun on the serialized backend at the new
/// transport sites: 2 sites × 2 actions × 3 shapes × 2 strategies. Every
/// cell must fail typed (a send-side panic is the coordinator's —
/// `worker: None`; a receive-side panic names the worker), publish no
/// partial artifact, and recover byte-identical to an uninjected oracle.
#[test]
fn transport_chaos_matrix_fails_typed_and_recovers_byte_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut truth: HashMap<(Strategy, PaperQuery), Relation> = HashMap::new();
    for strategy in STRATEGIES {
        let service = serving(strategy, TransportKind::Serialized);
        for shape in SHAPES {
            let out = service.execute(&shape_db_name(shape), &paper_query(shape)).unwrap();
            truth.insert((strategy, shape), out.rows().clone());
        }
    }

    for strategy in STRATEGIES {
        for shape in SHAPES {
            for site in TRANSPORT_SITES {
                for action in [FaultAction::Panic, FaultAction::Cancel] {
                    let cell = format!("{strategy:?}/{shape:?}/{site:?}/{action:?}");
                    let service = serving(strategy, TransportKind::Serialized);
                    let db = shape_db_name(shape);
                    let q = paper_query(shape);

                    let faults = install(FaultPlan::new().on(site, 0, action));
                    let err = service
                        .execute(&db, &q)
                        .expect_err(&format!("{cell}: injected fault must fail the query"));
                    assert!(faults.all_fired(), "{cell}: the arm never fired");
                    drop(faults);

                    match action {
                        FaultAction::Panic => {
                            let ServiceError::WorkerPanicked { worker, message } = &err else {
                                panic!("{cell}: expected WorkerPanicked, got {err:?}");
                            };
                            assert!(
                                message.contains(&format!("{site:?}")),
                                "{cell}: panic message {message:?} does not name the site"
                            );
                            match site {
                                // Sends happen on the routing coordinator.
                                FaultSite::TransportSend => assert_eq!(
                                    *worker, None,
                                    "{cell}: send-side panic blamed a worker"
                                ),
                                // Receives happen inside a worker's build loop.
                                FaultSite::TransportRecv => assert!(
                                    worker.is_some(),
                                    "{cell}: recv-side panic did not name a worker"
                                ),
                                _ => unreachable!(),
                            }
                        }
                        FaultAction::Cancel => {
                            assert!(
                                matches!(err, ServiceError::Cancelled),
                                "{cell}: expected Cancelled, got {err:?}"
                            );
                        }
                        FaultAction::Delay(_) => unreachable!(),
                    }

                    // Recovery: the same query on the same service now
                    // succeeds, byte-identical to the uninjected oracle.
                    let out = service
                        .execute(&db, &q)
                        .unwrap_or_else(|e| panic!("{cell}: recovery query failed: {e}"));
                    let expected = &truth[&(strategy, shape)];
                    let aligned = out.rows().permute(expected.schema().attrs()).unwrap();
                    assert_eq!(&aligned, expected, "{cell}: recovery diverged from oracle");
                }
            }
        }
    }
}

/// Elastic width at the service level: `elastic_workers` arms
/// `Cluster::resize`, the range clamps the starting width, resizing
/// between queries is accepted, and results are width-independent —
/// byte-identical before and after a resize.
#[test]
fn elastic_service_resizes_between_queries_without_changing_results() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let config = ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        elastic_workers: Some((1, 4)),
        ..Default::default()
    };
    let service = Arc::new(Service::new(config));
    let q = paper_query(PaperQuery::Q7);
    service.register_database("db", q.instantiate(&graph()));

    assert_eq!(service.cluster().config().worker_range, Some((1, 4)));
    assert_eq!(service.cluster().num_workers(), 2);

    let at_two = service.execute("db", &q).unwrap().rows().clone();

    service.cluster().resize(4).expect("idle elastic cluster must accept an in-range resize");
    assert_eq!(service.cluster().num_workers(), 4);
    // The cached plan's share grid assumed width 2; a fresh shape family
    // (re-registering the database drops the cache) resolves at width 4.
    service.register_database("db", q.instantiate(&graph()));
    let at_four = service.execute("db", &q).unwrap().rows().clone();
    let aligned = at_four.permute(at_two.schema().attrs()).unwrap();
    assert_eq!(aligned, at_two, "resize changed query results");

    // Out-of-range and non-elastic misuse stays typed and harmless.
    assert!(service.cluster().resize(9).is_err(), "out-of-range resize must be rejected");
    let rigid = serving(Strategy::CoOptimize, TransportKind::InProcess);
    assert!(rigid.cluster().resize(3).is_err(), "non-elastic cluster accepted a resize");
    service.execute("db", &q).expect("service must keep serving after rejected resizes");
}
