//! Index-cache acceptance tests: a warm cache must change *nothing* about
//! results — byte-identical outputs on Q1/Q4/Q7 under both plan-search
//! strategies and all four output modes — while provably skipping the
//! shuffle + trie-build work; a database mutation (stats-epoch bump) must
//! evict stale tries instead of serving them; and resident bytes must stay
//! under the configured budget, with LRU eviction under pressure.

use adj::prelude::*;
use adj_core::AdjConfig;

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];
const MODES: [OutputMode; 4] =
    [OutputMode::Rows, OutputMode::Count, OutputMode::Limit(5), OutputMode::Exists];

fn graph(n: u32, m: u32) -> Relation {
    let edges: Vec<(Value, Value)> = (0..n)
        .flat_map(|i| vec![(i % m, (i * 7 + 1) % m), ((i * 3) % m, (i * 11 + 5) % m)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

fn service_with(strategy: Strategy) -> Service {
    Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        strategy,
        ..Default::default()
    })
}

#[test]
fn warm_results_byte_identical_across_shapes_strategies_and_modes() {
    for strategy in STRATEGIES {
        let service = service_with(strategy);
        let g = graph(240, 31);
        for shape in SHAPES {
            let q = paper_query(shape);
            service.register_database(format!("{shape:?}"), q.instantiate(&g));
        }
        for shape in SHAPES {
            let q = paper_query(shape);
            let name = format!("{shape:?}");
            for mode in MODES {
                let cold = service.execute_mode(&name, &q, mode).unwrap();
                let warm = service.execute_mode(&name, &q, mode).unwrap();
                assert_eq!(
                    cold.output, warm.output,
                    "{shape:?}/{strategy:?}/{mode:?}: warm output must be byte-identical"
                );
                assert!(
                    warm.report.index_relations_built == 0,
                    "{shape:?}/{strategy:?}/{mode:?}: warm query rebuilt an index"
                );
                assert!(
                    warm.report.index_relations_reused > 0,
                    "{shape:?}/{strategy:?}/{mode:?}: warm query reused nothing"
                );
                assert_eq!(
                    warm.report.comm_tuples, 0,
                    "{shape:?}/{strategy:?}/{mode:?}: warm query still shuffled tuples"
                );
            }
        }
        let stats = service.index_cache_stats();
        assert!(stats.hits > 0, "{strategy:?}: the warm passes must hit the cache");
        assert!(stats.resident_bytes > 0);
        assert!(stats.resident_bytes <= stats.capacity_bytes);
    }
}

#[test]
fn warm_queries_match_an_uncached_adj_exactly() {
    // Not just self-consistency: the cached service must agree with a
    // plain single-shot Adj run that never sees a cache.
    let service = service_with(Strategy::CoOptimize);
    let g = graph(200, 29);
    let solo = Adj::with_workers(2);
    for shape in SHAPES {
        let q = paper_query(shape);
        let db = q.instantiate(&g);
        service.register_database(format!("{shape:?}"), db.clone());
        let name = format!("{shape:?}");
        service.execute(&name, &q).unwrap(); // cold pass populates the cache
        let warm = service.execute(&name, &q).unwrap();
        let truth = solo.execute(&q, &db).unwrap();
        assert_eq!(
            warm.rows().len(),
            truth.rows().len(),
            "{shape:?}: warm cardinality diverged from uncached execution"
        );
        let aligned = warm.rows().permute(truth.rows().schema().attrs()).unwrap();
        assert_eq!(&aligned, truth.rows(), "{shape:?}");
    }
}

#[test]
fn database_mutation_evicts_stale_tries_instead_of_serving_them() {
    let service = service_with(Strategy::CoOptimize);
    let q = paper_query(PaperQuery::Q1);

    let db_v1 = q.instantiate(&graph(120, 23));
    service.register_database("g", db_v1.clone());
    let first = service.execute("g", &q).unwrap();
    let warm = service.execute("g", &q).unwrap();
    assert!(warm.report.index_relations_reused > 0, "cache must be warm before the mutation");

    // Mutate: new contents under the same name bump the stats epoch.
    let db_v2 = q.instantiate(&graph(260, 41));
    service.register_database("g", db_v2.clone());
    let stats = service.index_cache_stats();
    assert!(stats.invalidations > 0, "re-registration must eagerly drop stale index entries");

    let after = service.execute("g", &q).unwrap();
    assert_eq!(
        after.report.index_relations_reused, 0,
        "a stale trie must never be served after the epoch bump"
    );
    let truth = Adj::with_workers(2).execute(&q, &db_v2).unwrap();
    assert_eq!(after.rows().len(), truth.rows().len(), "post-mutation result must reflect v2");
    assert_ne!(
        first.rows().len(),
        after.rows().len(),
        "test graphs must differ enough to expose stale serving"
    );

    // And the rebuilt entries serve the new contents warm.
    let rewarmed = service.execute("g", &q).unwrap();
    assert!(rewarmed.report.index_relations_reused > 0);
    assert_eq!(rewarmed.rows(), after.rows());
}

#[test]
fn dropping_a_database_frees_its_cached_bytes() {
    let service = service_with(Strategy::CoOptimize);
    let q = paper_query(PaperQuery::Q1);
    service.register_database("g", q.instantiate(&graph(150, 23)));
    service.execute("g", &q).unwrap();
    assert!(service.index_cache_stats().resident_bytes > 0);
    assert!(service.drop_database("g"));
    assert_eq!(service.index_cache_stats().resident_bytes, 0);
}

#[test]
fn resident_bytes_stay_under_a_tiny_budget_with_lru_eviction() {
    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        // Big enough for roughly one shape's tries, far too small for three.
        index_cache_capacity_bytes: Some(4_000),
        ..Default::default()
    });
    let g = graph(240, 31);
    for shape in SHAPES {
        let q = paper_query(shape);
        service.register_database(format!("{shape:?}"), q.instantiate(&g));
    }
    for _round in 0..2 {
        for shape in SHAPES {
            let q = paper_query(shape);
            service.execute_mode(&format!("{shape:?}"), &q, OutputMode::Count).unwrap();
        }
    }
    let stats = service.index_cache_stats();
    assert!(
        stats.resident_bytes <= stats.capacity_bytes,
        "resident {} exceeds budget {}",
        stats.resident_bytes,
        stats.capacity_bytes
    );
    assert_eq!(stats.capacity_bytes, 4_000);
    assert!(stats.evictions > 0, "three shapes cannot fit a one-shape budget without evicting");
}

#[test]
fn index_cache_budget_is_carved_out_of_the_cluster_memory_limit() {
    let per_worker = 1 << 20;
    let workers = 2;
    let max_concurrent = 4;
    let service = Service::new(ServiceConfig {
        adj: AdjConfig {
            cluster: ClusterConfig {
                num_workers: workers,
                memory_limit_bytes: Some(per_worker),
                ..Default::default()
            },
            ..Default::default()
        },
        max_concurrent,
        ..Default::default()
    });
    let total = per_worker * workers;
    let cache = service.index_cache_stats().capacity_bytes;
    let per_query = service.per_query_budget_bytes().expect("memory limit configured");
    assert!(cache > 0);
    assert!(
        cache + per_query * max_concurrent <= total,
        "cache ({cache}) + query budgets ({per_query}×{max_concurrent}) must fit under {total}"
    );
}

#[test]
fn service_metrics_expose_the_build_reuse_split() {
    let service = service_with(Strategy::CoOptimize);
    let q = paper_query(PaperQuery::Q4);
    service.register_database("g", q.instantiate(&graph(150, 29)));
    service.execute("g", &q).unwrap();
    service.execute("g", &q).unwrap();
    let m = service.metrics();
    assert!(m.index_relations_built > 0, "the cold pass builds");
    assert!(m.index_relations_reused > 0, "the warm pass reuses");
    assert_eq!(m.index_build.count, 2, "every served query records an index_build observation");
    let stats = service.stats();
    assert_eq!(stats.index.hits, service.index_cache_stats().hits);
}
