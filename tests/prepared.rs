//! Prepared-query acceptance tests.
//!
//! Ground truth is the **filter-then-full-join oracle**: a query bound at
//! attribute `a = v` must return byte-for-byte the rows of the *unbound*
//! join whose `a` column equals `v` — for every paper shape, both
//! plan-search strategies, and all four output modes. On top of
//! correctness, the serving contract: one prepared plan serves 50 distinct
//! bindings with >90% plan-cache *and* index-cache hit rates, and bound
//! executions never pollute the shared cache entries.

use adj::prelude::*;

const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];

/// `(shape, bound-at-$v query text)`: the same shape with the `a` vertex
/// turned into a parameter.
const BOUND_SHAPES: [(PaperQuery, &str); 3] = [
    (PaperQuery::Q1, "Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)"),
    (PaperQuery::Q4, "Q(b,c,d,e) :- R1($v,b), R2(b,c), R3(c,d), R4(d,e), R5(e,$v), R6(b,e)"),
    (PaperQuery::Q7, "Q(b,c) :- R1($v,b), R2(b,c)"),
];

/// A deterministic test graph with plenty of matches for every shape.
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

/// The oracle: the unbound result filtered to rows whose `a` column is `v`,
/// renormalized as a relation over the unbound result's schema.
fn filter_oracle(full: &Relation, v: Value) -> Relation {
    let a_col = full.schema().position(Attr(0)).expect("a in result");
    let rows: Vec<Vec<Value>> = full.rows().filter(|r| r[a_col] == v).map(|r| r.to_vec()).collect();
    let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
    Relation::from_rows(full.schema().clone(), &refs).unwrap()
}

#[test]
fn bound_results_match_the_filter_then_join_oracle() {
    let g = graph();
    let adj = Adj::with_workers(4);
    for (shape, text) in BOUND_SHAPES {
        let unbound = paper_query(shape);
        let db = unbound.instantiate(&g);
        let (bound_q, _) = parse_query(text).unwrap();
        for strategy in STRATEGIES {
            let full = adj.execute_with_strategy(&unbound, &db, strategy).unwrap();
            let full = full.rows();
            let prepared = adj.prepare(&bound_q, &db, strategy).unwrap();
            // A well-matched vertex, a sparse one, and an absent one.
            for v in [1u32, 17, 30, 999] {
                let oracle = filter_oracle(full, v);
                let b = Bindings::new().set("v", v);

                // Rows: byte-identical after schema alignment.
                let rows = adj.execute_bound(&prepared, &db, &b, OutputMode::Rows).unwrap();
                let aligned = rows.rows().permute(oracle.schema().attrs()).unwrap();
                assert_eq!(aligned, oracle, "{shape:?}/{strategy:?}/v={v}: rows");
                assert!(rows.report.bound_values > 0);

                // Count / Exists: counters only, same answers.
                let count = adj.execute_bound(&prepared, &db, &b, OutputMode::Count).unwrap();
                assert_eq!(
                    count.output,
                    QueryOutput::Count(oracle.len() as u64),
                    "{shape:?}/{strategy:?}/v={v}: count"
                );
                assert_eq!(count.output.tuples_returned(), 0);
                let exists = adj.execute_bound(&prepared, &db, &b, OutputMode::Exists).unwrap();
                assert_eq!(
                    exists.output,
                    QueryOutput::Exists(!oracle.is_empty()),
                    "{shape:?}/{strategy:?}/v={v}: exists"
                );

                // Limit(n): the canonical n smallest rows of the bound
                // result, under the bound plan's attribute order.
                let n = 3usize;
                let limited = adj.execute_bound(&prepared, &db, &b, OutputMode::Limit(n)).unwrap();
                let expect = oracle.permute(limited.rows().schema().attrs()).unwrap();
                let keep = n.min(expect.len());
                let canonical = Relation::from_flat(
                    expect.schema().clone(),
                    expect.flat()[..keep * expect.schema().arity()].to_vec(),
                )
                .unwrap();
                assert_eq!(
                    limited.rows(),
                    &canonical,
                    "{shape:?}/{strategy:?}/v={v}: limit rows are the canonical sample"
                );
            }
        }
    }
}

#[test]
fn inline_literals_equal_bound_params() {
    // `R1(7,b), …` must be exactly `R1($v,b), …` bound at v=7 — same
    // results, same plan-cache entry (the fingerprint ignores values and
    // treats literal and parameter positions alike).
    let g = graph();
    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        ..Default::default()
    });
    service.register_database("g", paper_query(PaperQuery::Q1).instantiate(&g));

    let (param_q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("g", &param_q).unwrap();
    let via_param =
        service.execute_bound(&prepared, &Bindings::new().set("v", 7), OutputMode::Rows).unwrap();
    let via_literal = service.execute_text("g", "Q(b,c) :- R1(7,b), R2(b,c), R3(7,c)").unwrap();
    assert!(via_literal.cache_hit, "the literal text must hit the prepared plan");
    assert_eq!(via_literal.fingerprint.plan_key, via_param.fingerprint.plan_key);
    assert_eq!(via_literal.rows(), via_param.rows());
}

#[test]
fn fifty_distinct_bindings_reuse_one_plan_and_index_family() {
    let g = graph();
    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        ..Default::default()
    });
    let unbound = paper_query(PaperQuery::Q1);
    let db = unbound.instantiate(&g);
    service.register_database("g", db.clone());
    let full = Adj::with_workers(4).execute(&unbound, &db).unwrap();
    let full = full.rows();

    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("g", &q).unwrap();

    let modes = [OutputMode::Rows, OutputMode::Count, OutputMode::Limit(2), OutputMode::Exists];
    for v in 0..50u32 {
        let b = Bindings::new().set("v", v);
        let mode = modes[v as usize % modes.len()];
        let out = service.execute_bound(&prepared, &b, mode).unwrap();
        assert!(out.cache_hit, "binding {v} must reuse the prepared plan");
        let oracle = filter_oracle(full, v);
        match mode {
            OutputMode::Rows => {
                let aligned = out.rows().permute(oracle.schema().attrs()).unwrap();
                assert_eq!(aligned, oracle, "binding {v}");
            }
            OutputMode::Count => {
                assert_eq!(out.output, QueryOutput::Count(oracle.len() as u64), "binding {v}");
            }
            OutputMode::Exists => {
                assert_eq!(out.output, QueryOutput::Exists(!oracle.is_empty()), "binding {v}");
            }
            OutputMode::Limit(n) => {
                assert_eq!(out.rows().len(), n.min(oracle.len()), "binding {v}");
            }
        }
    }

    let stats = service.stats();
    assert!(
        stats.cache.hit_rate() > 0.9,
        "plan cache hit rate {:.3} must stay above 0.9 across distinct bindings",
        stats.cache.hit_rate()
    );
    assert!(
        stats.index.hit_rate() > 0.9,
        "index cache hit rate {:.3} must stay above 0.9 — binding-independent \
         relations are one warm entry family",
        stats.index.hit_rate()
    );
    assert_eq!(stats.metrics.queries_prepared, 1);
    assert_eq!(stats.metrics.queries_ok, 50);
    assert!(stats.metrics.params_bound >= 50);
    let selectivity = stats.metrics.bound_selectivity.expect("bound shuffles ran");
    assert!(selectivity > 0.0 && selectivity < 0.5);
}

#[test]
fn bound_executions_never_pollute_shared_cache_entries() {
    // Interleave bound and unbound executions of the same shape family on
    // one service: the unbound query must keep returning the full result
    // (never a bound relation's filtered fragments), and the two shapes
    // must key separately everywhere.
    let g = graph();
    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        ..Default::default()
    });
    let unbound = paper_query(PaperQuery::Q1);
    let db = unbound.instantiate(&g);
    service.register_database("g", db.clone());

    let baseline = service.execute("g", &unbound).unwrap();
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("g", &q).unwrap();
    assert_ne!(
        prepared.fingerprint().plan_key,
        baseline.fingerprint.plan_key,
        "bound and free shapes must not share a plan entry"
    );

    for v in [1u32, 5, 9] {
        service.execute_bound(&prepared, &Bindings::new().set("v", v), OutputMode::Rows).unwrap();
        let again = service.execute("g", &unbound).unwrap();
        assert_eq!(
            again.rows(),
            baseline.rows(),
            "unbound result drifted after binding v={v} — cache aliasing"
        );
        assert!(again.cache_hit);
    }
}

#[test]
fn unbound_param_never_borrows_a_sibling_literals_values() {
    // Regression: the shape family `R1(7,b)…` / `R1($v,b)…` shares one
    // cached plan. An unbound `$v` submission arriving *after* the literal
    // member planted the plan must still fail with UnboundParam — never
    // silently answer with the literal owner's 7.
    let g = graph();
    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        ..Default::default()
    });
    service.register_database("g", paper_query(PaperQuery::Q1).instantiate(&g));
    service.execute_text("g", "COUNT(R1(7,b), R2(b,c), R3(7,c))").unwrap();

    let (param_q, _) = parse_query("R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let err = service.execute("g", &param_q).unwrap_err();
    assert!(
        matches!(err, ServiceError::Exec(adj::relational::Error::UnboundParam { .. })),
        "expected UnboundParam, got {err:?}"
    );
}

#[test]
fn yannakakis_honours_literals_and_rejects_free_params() {
    use adj::core::{yannakakis, Adj};
    let g = graph();
    let q1 = paper_query(PaperQuery::Q1);
    let db = q1.instantiate(&g);

    let (lit_q, _) = parse_query("R1(7,b), R2(b,c), R3(7,c)").unwrap();
    let (out, _) = yannakakis(&db, &lit_q, usize::MAX, OutputMode::Rows).unwrap();
    let via_adj = Adj::with_workers(2).execute(&lit_q, &db).unwrap();
    let aligned = out.rows().permute(via_adj.rows().schema().attrs()).unwrap();
    assert_eq!(&aligned, via_adj.rows(), "yannakakis must apply the literal selection");

    let (param_q, _) = parse_query("R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let err = yannakakis(&db, &param_q, usize::MAX, OutputMode::Rows).unwrap_err();
    assert!(matches!(err, adj::relational::Error::UnboundParam { .. }));
}

#[test]
fn baselines_reject_bound_queries_instead_of_joining_free() {
    use adj::baselines::{run_bigjoin, run_binary_join, run_hcubej, BaselineConfig};
    let g = graph();
    let db = paper_query(PaperQuery::Q1).instantiate(&g);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let cfg = BaselineConfig::default();
    let (lit_q, _) = parse_query("R1(7,b), R2(b,c), R3(7,c)").unwrap();
    let (param_q, _) = parse_query("R1($v,b), R2(b,c), R3($v,c)").unwrap();
    for q in [&lit_q, &param_q] {
        assert!(run_hcubej(&cluster, &db, q, &cfg).is_err(), "{q}");
        assert!(run_bigjoin(&cluster, &db, q, &cfg).is_err(), "{q}");
        assert!(run_binary_join(&cluster, &db, q, &cfg).is_err(), "{q}");
    }
}

#[test]
fn rebinding_works_across_database_reregistration() {
    // A prepared statement holds no pinned plan: re-registering the
    // database re-plans transparently and answers against the new data.
    let service = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        ..Default::default()
    });
    let q7 = paper_query(PaperQuery::Q7);
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c)").unwrap();

    let g1 = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (2, 3)]);
    service.register_database("g", q7.instantiate(&g1));
    let prepared = service.prepare("g", &q).unwrap();
    let b = Bindings::new().set("v", 1);
    let first = service.execute_bound(&prepared, &b, OutputMode::Count).unwrap();
    assert_eq!(first.output, QueryOutput::Count(1)); // 1→2→3

    let g2 = Relation::from_pairs(Attr(0), Attr(1), &[(1, 2), (2, 3), (1, 4), (4, 5), (2, 6)]);
    service.register_database("g", q7.instantiate(&g2));
    let second = service.execute_bound(&prepared, &b, OutputMode::Count).unwrap();
    assert!(!second.cache_hit, "new epoch must re-plan");
    assert_eq!(second.output, QueryOutput::Count(3)); // 1→2→{3,6}, 1→4→5
}
