//! Batched-execution acceptance tests.
//!
//! Ground truth is the **bound-loop oracle**: `Service::execute_batch`
//! over a binding vector must return, slot for slot, byte-identical
//! outputs to looping `Service::execute_bound` over the same bindings —
//! for every bound paper shape, both plan-search strategies, and all four
//! output modes. On top of correctness, the batching contract: duplicate
//! submissions execute once, a repeated batch is served wholesale from
//! the per-binding result cache, deadlines surface as typed errors, and
//! concurrent cold misses on one index-cache entry coalesce to a single
//! build.

use adj::prelude::*;
use std::time::Duration;

const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];

/// `(shape, bound-at-$v query text)`: the same shape with the `a` vertex
/// turned into a parameter.
const BOUND_SHAPES: [(PaperQuery, &str); 3] = [
    (PaperQuery::Q1, "Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)"),
    (PaperQuery::Q4, "Q(b,c,d,e) :- R1($v,b), R2(b,c), R3(c,d), R4(d,e), R5(e,$v), R6(b,e)"),
    (PaperQuery::Q7, "Q(b,c) :- R1($v,b), R2(b,c)"),
];

const MODES: [OutputMode; 4] =
    [OutputMode::Rows, OutputMode::Count, OutputMode::Limit(3), OutputMode::Exists];

/// A deterministic test graph with plenty of matches for every shape.
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

fn service_with(strategy: Strategy) -> Service {
    Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        strategy,
        ..Default::default()
    })
}

/// The filter-then-join oracle: the unbound result filtered to rows whose
/// `a` column is `v`.
fn filter_count(full: &Relation, v: Value) -> usize {
    let a_col = full.schema().position(Attr(0)).expect("a in result");
    full.rows().filter(|r| r[a_col] == v).count()
}

#[test]
fn batched_results_match_the_bound_loop_for_every_shape_strategy_and_mode() {
    let g = graph();
    // Hot, sparse, and absent vertices, with duplicates to exercise dedup.
    let vs = [1u32, 17, 30, 999, 17, 1];
    let bindings: Vec<Bindings> = vs.iter().map(|&v| Bindings::new().set("v", v)).collect();

    for (shape, text) in BOUND_SHAPES {
        let unbound = paper_query(shape);
        let db = unbound.instantiate(&g);
        let (bound_q, _) = parse_query(text).unwrap();
        for strategy in STRATEGIES {
            let service = service_with(strategy);
            service.register_database("g", db.clone());
            let full = service.execute("g", &unbound).unwrap();
            let prepared = service.prepare("g", &bound_q).unwrap();
            for mode in MODES {
                let batch = service.execute_batch(&prepared, &bindings, mode).unwrap();
                assert_eq!(batch.results.len(), vs.len());
                assert_eq!(batch.mode, mode);
                assert!(
                    batch.unique_executed <= 4,
                    "{shape:?}/{strategy:?}/{mode:?}: duplicates must deduplicate"
                );
                for (&v, got) in vs.iter().zip(&batch.results) {
                    // The loop oracle shares the batch's cached plan, so
                    // byte-identity is exact (Limit's canonical sample
                    // depends on the plan's attribute order).
                    let b = Bindings::new().set("v", v);
                    let want = service.execute_bound(&prepared, &b, mode).unwrap();
                    assert_eq!(
                        got.as_ref().unwrap(),
                        &want.output,
                        "{shape:?}/{strategy:?}/{mode:?}/v={v}: batch slot must equal the loop"
                    );
                    // Anchor against the filter-then-join oracle too.
                    let oracle = filter_count(full.rows(), v);
                    match mode {
                        OutputMode::Rows => {
                            assert_eq!(want.rows().len(), oracle, "{shape:?}/v={v}")
                        }
                        OutputMode::Count => {
                            assert_eq!(want.output, QueryOutput::Count(oracle as u64))
                        }
                        OutputMode::Exists => {
                            assert_eq!(want.output, QueryOutput::Exists(oracle > 0))
                        }
                        OutputMode::Limit(n) => {
                            assert_eq!(want.rows().len(), n.min(oracle))
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn repeated_batches_are_served_from_the_result_cache() {
    let service = service_with(Strategy::CoOptimize);
    service.register_database("g", paper_query(PaperQuery::Q1).instantiate(&graph()));
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("g", &q).unwrap();
    let bindings: Vec<Bindings> =
        [3u32, 9, 3, 21, 9, 3].iter().map(|&v| Bindings::new().set("v", v)).collect();

    let cold = service.execute_batch(&prepared, &bindings, OutputMode::Rows).unwrap();
    assert_eq!(cold.result_cache_hits, 0);
    assert_eq!(cold.unique_executed, 3, "three distinct vertices");

    let warm = service.execute_batch(&prepared, &bindings, OutputMode::Rows).unwrap();
    assert_eq!(warm.result_cache_hits, bindings.len(), "full re-batch must be all hits");
    assert_eq!(warm.unique_executed, 0);
    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }

    // A partially overlapping batch executes only the new vertices.
    let mixed: Vec<Bindings> = [3u32, 5, 9].iter().map(|&v| Bindings::new().set("v", v)).collect();
    let part = service.execute_batch(&prepared, &mixed, OutputMode::Rows).unwrap();
    assert_eq!(part.result_cache_hits, 2);
    assert_eq!(part.unique_executed, 1);

    let stats = service.stats();
    // The LRU is consulted once per *unique* binding (3 warm + 2 mixed);
    // the metrics counter tallies per-*submission* answers (6 warm + 2).
    assert_eq!(stats.results.hits, 5);
    assert_eq!(stats.metrics.batch_bindings_executed, 15);
    assert_eq!(stats.metrics.result_cache_hits, 8);
}

#[test]
fn empty_batches_and_binding_mismatches_are_typed() {
    let service = service_with(Strategy::CoOptimize);
    service.register_database("g", paper_query(PaperQuery::Q7).instantiate(&graph()));
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c)").unwrap();
    let prepared = service.prepare("g", &q).unwrap();

    let empty = service.execute_batch(&prepared, &[], OutputMode::Rows).unwrap();
    assert!(empty.results.is_empty());
    assert_eq!(empty.unique_executed, 0);
    assert_eq!(service.metrics().batch_bindings_executed, 0);

    // A missing and an unknown parameter both fail the whole batch with
    // the library's typed errors — nothing half-executes.
    for bad in [Bindings::new(), Bindings::new().set("w", 1u32)] {
        let err = service.execute_batch(&prepared, &[bad], OutputMode::Rows).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Exec(adj::relational::Error::UnboundParam { .. })
                    | ServiceError::Exec(adj::relational::Error::UnknownParam { .. })
            ),
            "{err:?}"
        );
    }

    // PreparedQuery::bind exposes the same validation without executing.
    assert!(prepared.bind(&Bindings::new().set("v", 1u32)).is_ok());
    assert!(matches!(
        prepared.bind(&Bindings::new()).unwrap_err(),
        adj::relational::Error::UnboundParam { .. }
    ));
    assert!(matches!(
        prepared.bind(&Bindings::new().set("v", 1u32).set("w", 2u32)).unwrap_err(),
        adj::relational::Error::UnknownParam { .. }
    ));
}

#[test]
fn batch_deadlines_surface_as_typed_errors_not_partial_garbage() {
    let service = service_with(Strategy::CoOptimize);
    service.register_database("g", paper_query(PaperQuery::Q1).instantiate(&graph()));
    let (q, _) = parse_query("Q(b,c) :- R1($v,b), R2(b,c), R3($v,c)").unwrap();
    let prepared = service.prepare("g", &q).unwrap();
    let bindings: Vec<Bindings> = (0..16u32).map(|v| Bindings::new().set("v", v)).collect();

    let result = service.execute_batch_with_deadline(
        &prepared,
        &bindings,
        OutputMode::Rows,
        Some(Duration::ZERO),
    );
    // The zero deadline fires at the first checkpoint. Depending on where
    // that lands the whole batch fails, or completed bindings keep their
    // results and the rest observe the typed deadline error — either way
    // every slot is a definite outcome, never silently empty.
    match result {
        Err(e) => assert!(matches!(e, ServiceError::DeadlineExceeded { .. }), "{e:?}"),
        Ok(batch) => {
            assert_eq!(batch.results.len(), bindings.len());
            assert!(batch.results.iter().any(|r| matches!(
                r,
                Err(ServiceError::DeadlineExceeded { .. }) | Err(ServiceError::Cancelled)
            )));
        }
    }

    // An unconstrained resubmission runs clean: no partial cache artifacts
    // poisoned the result or index caches.
    let clean = service.execute_batch(&prepared, &bindings, OutputMode::Rows).unwrap();
    let full = service.execute("g", &paper_query(PaperQuery::Q1)).unwrap();
    for (v, got) in (0..16u32).zip(&clean.results) {
        let QueryOutput::Rows(rows) = got.as_ref().unwrap() else { panic!("rows mode") };
        assert_eq!(rows.len(), filter_count(full.rows(), v), "v={v}");
    }
}

#[test]
fn concurrent_cold_misses_coalesce_to_one_index_build() {
    let q = paper_query(PaperQuery::Q1);
    let db = q.instantiate(&graph());

    // Control: one query on a fresh service establishes how many index
    // relations a single cold run builds.
    let control = service_with(Strategy::CoOptimize);
    control.register_database("g", db.clone());
    control.execute("g", &q).unwrap();
    let control_built = control.metrics().index_relations_built;
    assert!(control_built > 0);

    // Race: many threads hit the same cold entries at once. Coalescing
    // must collapse the duplicate builds — the total equals the single
    // cold run, not N times it.
    let racy = Service::new(ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(4), ..Default::default() },
        max_concurrent: 8,
        ..Default::default()
    });
    racy.register_database("g", db);
    let expect = control.execute("g", &q).unwrap();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (racy, q) = (&racy, &q);
                s.spawn(move || racy.execute("g", q).unwrap())
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out.rows().len(), expect.rows().len());
        }
    });
    let m = racy.metrics();
    assert_eq!(
        m.index_relations_built, control_built,
        "racing cold misses must coalesce to exactly one build per entry \
         ({} coalesced waits observed)",
        m.coalesced_builds
    );
}
