//! Property-based tests over the core invariants, on randomly generated
//! graphs and schedules (proptest).

use adj::prelude::{
    paper_query, Attr, ClusterConfig, JoinQuery, PaperQuery, Relation, Sampler, SamplingConfig,
    Schema,
};
use adj_query::order::{all_orders, is_valid_order, valid_orders};
use adj_query::GhdTree;
use adj_relational::intersect::{intersect2_merge, leapfrog_intersect};
use adj_relational::Trie;
use proptest::prelude::*;

/// Strategy: a small random edge list over `m` node ids.
fn edges(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 1..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K-way leapfrog intersection equals iterated 2-way merge intersection.
    #[test]
    fn kway_intersection_equals_iterated_merge(
        mut a in prop::collection::vec(0u32..500, 0..200),
        mut b in prop::collection::vec(0u32..500, 0..200),
        mut c in prop::collection::vec(0u32..500, 0..200),
    ) {
        for v in [&mut a, &mut b, &mut c] {
            v.sort_unstable();
            v.dedup();
        }
        let mut expect = Vec::new();
        let mut tmp = Vec::new();
        intersect2_merge(&a, &b, &mut tmp);
        intersect2_merge(&tmp, &c, &mut expect);
        let mut got = Vec::new();
        leapfrog_intersect(&[&a, &b, &c], &mut got);
        prop_assert_eq!(got, expect);
    }

    /// Trie build/emit round-trips any relation.
    #[test]
    fn trie_roundtrip(pairs in edges(64, 300)) {
        let rel = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let trie = Trie::build(&rel);
        prop_assert_eq!(trie.to_relation(), rel);
    }

    /// Leapfrog triangle counting matches the reference pairwise join, for
    /// ANY attribute order.
    #[test]
    fn leapfrog_equals_reference_any_order(pairs in edges(24, 120), perm in 0usize..6) {
        let q = paper_query(PaperQuery::Q1);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let expected = db.get("R1").unwrap()
            .join(db.get("R2").unwrap()).unwrap()
            .join(db.get("R3").unwrap()).unwrap();
        let orders = all_orders(&q.attrs());
        let order = &orders[perm];
        let tries: Vec<Trie> = q.atoms.iter()
            .map(|a| db.get(&a.name).unwrap().trie_under_order(order).unwrap())
            .collect();
        let join = adj_leapfrog::LeapfrogJoin::new(order, tries.iter().collect()).unwrap();
        prop_assert_eq!(join.count().0 as usize, expected.len());
    }

    /// The cached join always matches the plain join, for any capacity.
    #[test]
    fn cached_join_matches_plain(pairs in edges(20, 100), cap in 0usize..64) {
        let q = paper_query(PaperQuery::Q4);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let order = q.attrs();
        let tries: Vec<Trie> = q.atoms.iter()
            .map(|a| db.get(&a.name).unwrap().trie_under_order(&order).unwrap())
            .collect();
        let plain = adj_leapfrog::LeapfrogJoin::new(&order, tries.iter().collect()).unwrap();
        let cached = adj_leapfrog::CachedJoin::new(&order, tries.iter().collect(), cap).unwrap();
        prop_assert_eq!(plain.count().0, cached.count().0);
    }

    /// Relation algebra: semijoin output is contained in the input and
    /// agrees with join-then-project.
    #[test]
    fn semijoin_is_join_projection(
        left in edges(16, 80),
        right in edges(16, 80),
    ) {
        let l = Relation::from_pairs(Attr(0), Attr(1), &left);
        let r = Relation::from_pairs(Attr(1), Attr(2), &right);
        let sj = l.semijoin(&r);
        for row in sj.rows() {
            prop_assert!(l.contains_row(row));
        }
        let jp = l.join(&r).unwrap().project(&[Attr(0), Attr(1)]).unwrap();
        prop_assert_eq!(sj, jp);
    }

    /// HCube: for any share vector, the one-round shuffle + local leapfrog
    /// equals the reference join (distribution transparency).
    #[test]
    fn hcube_distribution_transparency(
        pairs in edges(20, 80),
        p1 in 1u32..3, p2 in 1u32..3, p3 in 1u32..3,
        workers in 1usize..5,
    ) {
        use adj_hcube::{hcube_shuffle, HCubeImpl, HCubePlan};
        let q = paper_query(PaperQuery::Q1);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let expected = db.get("R1").unwrap()
            .join(db.get("R2").unwrap()).unwrap()
            .join(db.get("R3").unwrap()).unwrap();
        let cluster = adj_cluster::Cluster::new(ClusterConfig::with_workers(workers));
        let plan = HCubePlan::new(vec![p1, p2, p3], workers);
        let order = q.attrs();
        let names: Vec<String> = q.atoms.iter().map(|a| a.name.clone()).collect();
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order, HCubeImpl::Merge).unwrap();
        let mut total = Vec::new();
        for w in 0..workers {
            let tries: Vec<&Trie> = out.locals[w].iter().map(|l| &l.trie).collect();
            let join = adj_leapfrog::LeapfrogJoin::new(&order, tries).unwrap();
            join.run(|t| total.extend_from_slice(t));
        }
        let got = Relation::from_flat(Schema::new(order.clone()).unwrap(), total).unwrap();
        prop_assert_eq!(got.len(), expected.len());
    }

    /// Sampling with the full value set and many samples brackets the truth.
    #[test]
    fn sampling_converges(pairs in edges(24, 150), seed in 0u64..50) {
        let q = paper_query(PaperQuery::Q1);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let order = q.attrs();
        let tries: Vec<Trie> = q.atoms.iter()
            .map(|a| db.get(&a.name).unwrap().trie_under_order(&order).unwrap())
            .collect();
        let truth = adj_leapfrog::LeapfrogJoin::new(&order, tries.iter().collect())
            .unwrap().count().0 as f64;
        let sampler = Sampler::new(&db, &q, &order).unwrap();
        let est = sampler.estimate(&SamplingConfig { samples: 3000, seed }).unwrap();
        if truth == 0.0 {
            prop_assert!(est.cardinality < 1.0 || est.val_a == 0);
        } else {
            let d = est.cardinality.max(truth) / est.cardinality.min(truth).max(1e-9);
            prop_assert!(d < 3.0, "D={d} est={} truth={truth}", est.cardinality);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every GHD the decomposer produces is valid (edge coverage + running
    /// intersection) on random connected-ish hypergraphs from the workload
    /// generator space.
    #[test]
    fn ghd_always_valid(extra in prop::collection::vec((0u32..5, 0u32..5), 0..4)) {
        // base: 5-cycle; add random chords
        let mut es = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)];
        for (x, y) in extra {
            if x != y {
                es.push((x, y));
            }
        }
        let q = JoinQuery::from_edges("rand", &es);
        let h = q.hypergraph();
        let t = GhdTree::decompose(&h, 3);
        prop_assert!(t.is_valid_for(&h));
        prop_assert!(t.fhw >= 1.0 - 1e-9);
        // every valid order passes the checker; the checker rejects at
        // least as many orders as the generator produces
        let vo = valid_orders(&t);
        for o in &vo {
            prop_assert!(is_valid_order(&t, o));
        }
        prop_assert!(!vo.is_empty());
    }
}
