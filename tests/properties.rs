//! Property-based tests over the core invariants, on randomly generated
//! graphs and schedules.
//!
//! Originally written against `proptest`; the offline build environment
//! cannot fetch it, so the same properties now run under a small seeded-RNG
//! loop harness (`cases`). Every case is deterministic per seed, so a
//! failure reproduces by re-running the test.

use adj::prelude::{
    paper_query, Attr, ClusterConfig, JoinQuery, PaperQuery, Relation, Sampler, SamplingConfig,
    Schema,
};
use adj_query::order::{all_orders, is_valid_order, valid_orders};
use adj_query::GhdTree;
use adj_relational::intersect::{intersect2_merge, leapfrog_intersect};
use adj_relational::Trie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `body` for `n` deterministic cases, each with its own seeded RNG.
fn cases(n: u64, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..n {
        let mut rng = StdRng::seed_from_u64(0xADF0_5EED ^ case.wrapping_mul(0x9E37_79B9));
        body(&mut rng);
    }
}

/// A small random edge list over `max_nodes` node ids, 1..max_edges long.
fn edges(rng: &mut StdRng, max_nodes: u32, max_edges: usize) -> Vec<(u32, u32)> {
    let len = rng.gen_range(1..max_edges);
    (0..len).map(|_| (rng.gen_range(0..max_nodes), rng.gen_range(0..max_nodes))).collect()
}

/// A sorted deduplicated random value run.
fn sorted_run(rng: &mut StdRng, max_val: u32, max_len: usize) -> Vec<u32> {
    let len = rng.gen_range(0..max_len);
    let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..max_val)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// K-way leapfrog intersection equals iterated 2-way merge intersection.
#[test]
fn kway_intersection_equals_iterated_merge() {
    cases(64, |rng| {
        let a = sorted_run(rng, 500, 201);
        let b = sorted_run(rng, 500, 201);
        let c = sorted_run(rng, 500, 201);
        let mut expect = Vec::new();
        let mut tmp = Vec::new();
        intersect2_merge(&a, &b, &mut tmp);
        intersect2_merge(&tmp, &c, &mut expect);
        let mut got = Vec::new();
        leapfrog_intersect(&[&a, &b, &c], &mut got);
        assert_eq!(got, expect);
    });
}

/// Trie build/emit round-trips any relation.
#[test]
fn trie_roundtrip() {
    cases(64, |rng| {
        let pairs = edges(rng, 64, 300);
        let rel = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let trie = Trie::build(&rel);
        assert_eq!(trie.to_relation(), rel);
    });
}

/// Leapfrog triangle counting matches the reference pairwise join, for ANY
/// attribute order.
#[test]
fn leapfrog_equals_reference_any_order() {
    cases(64, |rng| {
        let pairs = edges(rng, 24, 120);
        let perm = rng.gen_range(0usize..6);
        let q = paper_query(PaperQuery::Q1);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let expected = db
            .get("R1")
            .unwrap()
            .join(db.get("R2").unwrap())
            .unwrap()
            .join(db.get("R3").unwrap())
            .unwrap();
        let orders = all_orders(&q.attrs());
        let order = &orders[perm];
        let tries: Vec<Trie> = q
            .atoms
            .iter()
            .map(|a| db.get(&a.name).unwrap().trie_under_order(order).unwrap())
            .collect();
        let join = adj_leapfrog::LeapfrogJoin::new(order, tries.iter().collect()).unwrap();
        assert_eq!(join.count().0 as usize, expected.len());
    });
}

/// The cached join always matches the plain join, for any capacity.
#[test]
fn cached_join_matches_plain() {
    cases(64, |rng| {
        let pairs = edges(rng, 20, 100);
        let cap = rng.gen_range(0usize..64);
        let q = paper_query(PaperQuery::Q4);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let order = q.attrs();
        let tries: Vec<Trie> = q
            .atoms
            .iter()
            .map(|a| db.get(&a.name).unwrap().trie_under_order(&order).unwrap())
            .collect();
        let plain = adj_leapfrog::LeapfrogJoin::new(&order, tries.iter().collect()).unwrap();
        let cached = adj_leapfrog::CachedJoin::new(&order, tries.iter().collect(), cap).unwrap();
        assert_eq!(plain.count().0, cached.count().0);
    });
}

/// Relation algebra: semijoin output is contained in the input and agrees
/// with join-then-project.
#[test]
fn semijoin_is_join_projection() {
    cases(64, |rng| {
        let left = edges(rng, 16, 80);
        let right = edges(rng, 16, 80);
        let l = Relation::from_pairs(Attr(0), Attr(1), &left);
        let r = Relation::from_pairs(Attr(1), Attr(2), &right);
        let sj = l.semijoin(&r);
        for row in sj.rows() {
            assert!(l.contains_row(row));
        }
        let jp = l.join(&r).unwrap().project(&[Attr(0), Attr(1)]).unwrap();
        assert_eq!(sj, jp);
    });
}

/// HCube: for any share vector, the one-round shuffle + local leapfrog
/// equals the reference join (distribution transparency).
#[test]
fn hcube_distribution_transparency() {
    cases(64, |rng| {
        use adj_hcube::{hcube_shuffle, HCubeImpl, HCubePlan};
        let pairs = edges(rng, 20, 80);
        let (p1, p2, p3) = (rng.gen_range(1u32..3), rng.gen_range(1u32..3), rng.gen_range(1u32..3));
        let workers = rng.gen_range(1usize..5);
        let q = paper_query(PaperQuery::Q1);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let expected = db
            .get("R1")
            .unwrap()
            .join(db.get("R2").unwrap())
            .unwrap()
            .join(db.get("R3").unwrap())
            .unwrap();
        let cluster = adj_cluster::Cluster::new(ClusterConfig::with_workers(workers));
        let plan = HCubePlan::new(vec![p1, p2, p3], workers);
        let order = q.attrs();
        let names: Vec<String> = q.atoms.iter().map(|a| a.name.clone()).collect();
        let out = hcube_shuffle(&cluster, &db, &names, &plan, &order, HCubeImpl::Merge).unwrap();
        let mut total = Vec::new();
        for w in 0..workers {
            let tries: Vec<&Trie> = out.locals[w].iter().map(|l| l.trie.as_ref()).collect();
            let join = adj_leapfrog::LeapfrogJoin::new(&order, tries).unwrap();
            join.run(|t| total.extend_from_slice(t));
        }
        let got = Relation::from_flat(Schema::new(order.clone()).unwrap(), total).unwrap();
        assert_eq!(got.len(), expected.len());
    });
}

/// Sampling with the full value set and many samples brackets the truth.
#[test]
fn sampling_converges() {
    cases(50, |rng| {
        let pairs = edges(rng, 24, 150);
        let seed = rng.gen_range(0u64..50);
        let q = paper_query(PaperQuery::Q1);
        let g = Relation::from_pairs(Attr(0), Attr(1), &pairs);
        let db = q.instantiate(&g);
        let order = q.attrs();
        let tries: Vec<Trie> = q
            .atoms
            .iter()
            .map(|a| db.get(&a.name).unwrap().trie_under_order(&order).unwrap())
            .collect();
        let truth =
            adj_leapfrog::LeapfrogJoin::new(&order, tries.iter().collect()).unwrap().count().0
                as f64;
        let sampler = Sampler::new(&db, &q, &order).unwrap();
        let est = sampler.estimate(&SamplingConfig { samples: 3000, seed }).unwrap();
        if truth == 0.0 {
            assert!(est.cardinality < 1.0 || est.val_a == 0);
        } else {
            let d = est.cardinality.max(truth) / est.cardinality.min(truth).max(1e-9);
            assert!(d < 3.0, "D={d} est={} truth={truth}", est.cardinality);
        }
    });
}

/// Every GHD the decomposer produces is valid (edge coverage + running
/// intersection) on random connected-ish hypergraphs from the workload
/// generator space.
#[test]
fn ghd_always_valid() {
    cases(32, |rng| {
        // base: 5-cycle; add random chords
        let mut es = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)];
        let extra = rng.gen_range(0usize..4);
        for _ in 0..extra {
            let (x, y) = (rng.gen_range(0u32..5), rng.gen_range(0u32..5));
            if x != y {
                es.push((x, y));
            }
        }
        let q = JoinQuery::from_edges("rand", &es);
        let h = q.hypergraph();
        let t = GhdTree::decompose(&h, 3);
        assert!(t.is_valid_for(&h));
        assert!(t.fhw >= 1.0 - 1e-9);
        // every valid order passes the checker; the checker rejects at
        // least as many orders as the generator produces
        let vo = valid_orders(&t);
        for o in &vo {
            assert!(is_valid_order(&t, o));
        }
        assert!(!vo.is_empty());
    });
}
