//! Chaos matrix for the fault-tolerance layer: every query-path injection
//! site × every workload shape × both plan strategies, under both panic
//! and cancel actions. Each cell must fail with a *typed*
//! [`ServiceError`] (never a process abort, never a poisoned lock), leave
//! no partial artifact behind, and serve the next identical query
//! byte-identical to an uninjected oracle — with the index cache warming
//! up again afterwards.
//!
//! The fault injector is process-global, so every test in this binary
//! takes the file-local [`SERIAL`] lock first: an uninjected oracle run
//! racing another test's installed plan would otherwise absorb its
//! faults. (Other test binaries are separate processes and unaffected.)

use adj::faults::{install, FaultAction, FaultPlan, FaultSite};
use adj::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes the tests in this binary (see module docs).
static SERIAL: Mutex<()> = Mutex::new(());

const SHAPES: [PaperQuery; 3] = [PaperQuery::Q1, PaperQuery::Q4, PaperQuery::Q7];
const STRATEGIES: [Strategy; 2] = [Strategy::CoOptimize, Strategy::CommFirst];
/// The query-path sites; `MutationApply` is exercised by the mutation
/// tests below.
const QUERY_SITES: [FaultSite; 3] =
    [FaultSite::ShuffleRoute, FaultSite::TrieBuild, FaultSite::JoinEnumerate];

fn shape_db_name(q: PaperQuery) -> String {
    format!("db_{q:?}")
}

/// A deterministic test graph (same family as tests/service.rs).
fn graph() -> Relation {
    let edges: Vec<(Value, Value)> = (0..240u32)
        .flat_map(|i| vec![(i % 31, (i * 7 + 1) % 31), ((i * 3) % 31, (i * 11 + 5) % 31)])
        .collect();
    Relation::from_pairs(Attr(0), Attr(1), &edges)
}

/// A fresh (cold-cache) service pinned to `strategy`, with one database
/// per workload shape.
fn serving(strategy: Strategy) -> Arc<Service> {
    let config = ServiceConfig {
        adj: AdjConfig { cluster: ClusterConfig::with_workers(2), ..Default::default() },
        strategy,
        max_concurrent: 2,
        ..Default::default()
    };
    let service = Arc::new(Service::new(config));
    let g = graph();
    for shape in SHAPES {
        let q = paper_query(shape);
        service.register_database(shape_db_name(shape), q.instantiate(&g));
    }
    service
}

/// Uninjected ground truth, one fresh service per strategy.
fn oracle_rows() -> HashMap<(Strategy, PaperQuery), Relation> {
    let mut truth = HashMap::new();
    for strategy in STRATEGIES {
        let service = serving(strategy);
        for shape in SHAPES {
            let out = service.execute(&shape_db_name(shape), &paper_query(shape)).unwrap();
            truth.insert((strategy, shape), out.rows().clone());
        }
    }
    truth
}

/// Sanity floor for the matrix: a cold run of every cell reaches every
/// query-path injection site at least once (so `nth: 0` arms always have
/// something to hit), and a warm run still reaches the enumeration sink.
#[test]
fn every_cold_cell_reaches_every_query_site() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for strategy in STRATEGIES {
        for shape in SHAPES {
            let service = serving(strategy);
            let q = paper_query(shape);
            let faults = install(FaultPlan::new());
            service.execute(&shape_db_name(shape), &q).unwrap();
            for site in QUERY_SITES {
                assert!(
                    faults.hits(site) > 0,
                    "{strategy:?} {shape:?} cold run never reached {site:?}"
                );
            }
            drop(faults);
            let faults = install(FaultPlan::new());
            service.execute(&shape_db_name(shape), &q).unwrap();
            assert!(
                faults.hits(FaultSite::JoinEnumerate) > 0,
                "{strategy:?} {shape:?} warm run never reached the join sink"
            );
        }
    }
}

/// The chaos matrix itself: 3 sites × 2 actions × 3 shapes × 2 strategies.
/// Every cell gets a fresh cold service so the build-path sites are live.
#[test]
fn chaos_matrix_fails_typed_and_recovers_byte_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let truth = oracle_rows();

    for strategy in STRATEGIES {
        for shape in SHAPES {
            for site in QUERY_SITES {
                for action in [FaultAction::Panic, FaultAction::Cancel] {
                    let cell = format!("{strategy:?}/{shape:?}/{site:?}/{action:?}");
                    let service = serving(strategy);
                    let db = shape_db_name(shape);
                    let q = paper_query(shape);

                    let faults = install(FaultPlan::new().on(site, 0, action));
                    let err = service
                        .execute(&db, &q)
                        .expect_err(&format!("{cell}: injected fault must fail the query"));
                    assert!(faults.all_fired(), "{cell}: the arm never fired");
                    assert!(faults.hits(site) > 0, "{cell}: site not reached");
                    drop(faults);

                    match action {
                        FaultAction::Panic => {
                            let ServiceError::WorkerPanicked { message, .. } = &err else {
                                panic!("{cell}: expected WorkerPanicked, got {err:?}");
                            };
                            assert!(
                                message.contains(&format!("{site:?}")),
                                "{cell}: panic message {message:?} does not name the site"
                            );
                        }
                        FaultAction::Cancel => {
                            assert!(
                                matches!(err, ServiceError::Cancelled),
                                "{cell}: expected Cancelled, got {err:?}"
                            );
                        }
                        FaultAction::Delay(_) => unreachable!(),
                    }

                    // The failure was counted, typed, and nothing succeeded.
                    let m = service.stats().metrics;
                    assert_eq!(m.queries_failed, 1, "{cell}");
                    assert_eq!(m.queries_ok, 0, "{cell}");
                    match action {
                        FaultAction::Panic => assert_eq!(m.worker_panics_caught, 1, "{cell}"),
                        FaultAction::Cancel => assert_eq!(m.queries_cancelled, 1, "{cell}"),
                        FaultAction::Delay(_) => unreachable!(),
                    }

                    // Recovery: the same query on the same service now
                    // succeeds, byte-identical to the uninjected oracle —
                    // the failed attempt published no partial artifact.
                    let out = service
                        .execute(&db, &q)
                        .unwrap_or_else(|e| panic!("{cell}: recovery query failed: {e}"));
                    let expected = &truth[&(strategy, shape)];
                    let aligned = out.rows().permute(expected.schema().attrs()).unwrap();
                    assert_eq!(&aligned, expected, "{cell}: recovery diverged from oracle");

                    // And the caches warm back up: a third run reuses every
                    // index relation and hits the plan cache.
                    let before = service.stats();
                    let again = service.execute(&db, &q).unwrap();
                    let aligned = again.rows().permute(expected.schema().attrs()).unwrap();
                    assert_eq!(&aligned, expected, "{cell}: warm rerun diverged");
                    let after = service.stats();
                    assert_eq!(
                        after.metrics.index_relations_built, before.metrics.index_relations_built,
                        "{cell}: warm rerun rebuilt index relations"
                    );
                    assert!(
                        after.cache.hits > before.cache.hits,
                        "{cell}: warm rerun missed the plan cache"
                    );
                }
            }
        }
    }
}

/// MutationApply faults: a panicking or cancelled mutation batch must
/// leave the *old* snapshot servable, keep the mutation door un-wedged,
/// and let an identical retry land.
#[test]
fn mutation_faults_leave_the_old_snapshot_servable_and_retryable() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for action in [FaultAction::Panic, FaultAction::Cancel] {
        let service = serving(Strategy::CoOptimize);
        let db = shape_db_name(PaperQuery::Q1);
        let q = paper_query(PaperQuery::Q1);
        let relation = q.atoms[0].name.clone();
        let baseline = service.execute(&db, &q).unwrap().rows().clone();

        let batch = MutationBatch::new(&relation).insert(&[7, 11]).insert(&[11, 7]);
        let faults = install(FaultPlan::new().on(FaultSite::MutationApply, 0, action));
        let err = service.mutate(&db, &batch).expect_err("injected mutation fault must surface");
        assert!(faults.all_fired(), "{action:?}: the mutation arm never fired");
        drop(faults);
        match action {
            FaultAction::Panic => {
                assert!(
                    matches!(&err, ServiceError::WorkerPanicked { worker: None, .. }),
                    "{action:?}: got {err:?}"
                );
            }
            FaultAction::Cancel => {
                assert!(matches!(err, ServiceError::Cancelled), "{action:?}: got {err:?}");
            }
            FaultAction::Delay(_) => unreachable!(),
        }

        // The failed batch published nothing: queries still serve the old
        // snapshot.
        let still = service.execute(&db, &q).unwrap();
        let aligned = still.rows().permute(baseline.schema().attrs()).unwrap();
        assert_eq!(aligned, baseline, "{action:?}: failed mutation leaked partial state");

        // The door is un-wedged: an identical retry applies cleanly and
        // matches an oracle service that applied the same batch uninjected.
        let outcome = service.mutate(&db, &batch).expect("retry after fault");
        assert!(outcome.inserted > 0, "{action:?}: retry applied nothing");
        let mutated = service.execute(&db, &q).unwrap().rows().clone();

        let oracle = serving(Strategy::CoOptimize);
        oracle.mutate(&db, &batch).unwrap();
        let expected = oracle.execute(&db, &q).unwrap().rows().clone();
        let aligned = mutated.permute(expected.schema().attrs()).unwrap();
        assert_eq!(aligned, expected, "{action:?}: post-retry rows diverged from oracle");
    }
}

/// A zero deadline trips at the first checkpoint as a typed
/// [`ServiceError::DeadlineExceeded`]; the next undeadlined query serves
/// normally.
#[test]
fn zero_deadline_fails_typed_and_service_keeps_serving() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let service = serving(Strategy::CoOptimize);
    let db = shape_db_name(PaperQuery::Q1);
    let q = paper_query(PaperQuery::Q1);
    let err = service
        .execute_mode_with_deadline(&db, &q, OutputMode::Rows, Some(Duration::ZERO))
        .expect_err("a zero deadline cannot be met");
    assert!(
        matches!(err, ServiceError::DeadlineExceeded { deadline: Some(Duration::ZERO) }),
        "got {err:?}"
    );
    service.execute(&db, &q).expect("service must keep serving after a deadline miss");
    let m = service.stats().metrics;
    assert_eq!(m.queries_deadline_exceeded, 1);
    assert_eq!(m.queries_ok, 1);
}

/// The seeded chaos sweep: a pseudo-random plan drawn from `FAULTS_SEED`
/// (CI reruns the matrix under a second seed) fires panics, cancels, and
/// delays across all sites while a mixed query + mutation workload runs.
/// Every failure must be typed, the service must never wedge, and after
/// disarming it must serve every shape byte-identical to the oracle.
#[test]
fn seeded_plan_only_produces_typed_errors_and_service_survives() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let seed = std::env::var("FAULTS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xAD1_F417);

    let service = serving(Strategy::CoOptimize);
    let faults = install(FaultPlan::seeded(seed, 8));
    let mut failures = 0usize;
    for round in 0..4 {
        for shape in SHAPES {
            let db = shape_db_name(shape);
            match service.execute(&db, &paper_query(shape)) {
                Ok(_) => {}
                Err(
                    ServiceError::WorkerPanicked { .. }
                    | ServiceError::Cancelled
                    | ServiceError::DeadlineExceeded { .. },
                ) => failures += 1,
                Err(other) => panic!("seed {seed:#x} round {round}: untyped failure {other:?}"),
            }
            let relation = paper_query(shape).atoms[0].name.clone();
            let batch =
                MutationBatch::new(&relation).insert(&[100 + round as Value, 200 + round as Value]);
            match service.mutate(&db, &batch) {
                Ok(_) => {}
                Err(
                    ServiceError::WorkerPanicked { .. }
                    | ServiceError::Cancelled
                    | ServiceError::DeadlineExceeded { .. },
                ) => failures += 1,
                Err(other) => panic!("seed {seed:#x} round {round}: untyped mutate {other:?}"),
            }
        }
    }
    drop(faults);
    eprintln!("seeded sweep (seed {seed:#x}): {failures} injected failures absorbed");

    // Disarmed, the service serves every shape identical to an oracle that
    // took the same surviving mutations. Replay the workload's mutation
    // stream on a fresh service, retrying each batch until it lands (the
    // chaos run may have dropped some batches — that is the point).
    let oracle = serving(Strategy::CoOptimize);
    for round in 0..4 {
        for shape in SHAPES {
            let db = shape_db_name(shape);
            let relation = paper_query(shape).atoms[0].name.clone();
            let batch =
                MutationBatch::new(&relation).insert(&[100 + round as Value, 200 + round as Value]);
            // Inserts are idempotent (set semantics), so "apply every batch"
            // is the closure of every partial history the chaos run allows…
            // except batches the chaos run *rejected*, which it must NOT
            // have applied. Re-apply on the live service too: after the
            // disarm both sides converge on the full stream.
            service.mutate(&db, &batch).unwrap();
            oracle.mutate(&db, &batch).unwrap();
        }
    }
    for shape in SHAPES {
        let db = shape_db_name(shape);
        let q = paper_query(shape);
        let got = service.execute(&db, &q).unwrap().rows().clone();
        let expected = oracle.execute(&db, &q).unwrap().rows().clone();
        let aligned = got.permute(expected.schema().attrs()).unwrap();
        assert_eq!(aligned, expected, "seed {seed:#x}: {shape:?} diverged after disarm");
    }
}
